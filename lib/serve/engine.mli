(** The serve state machine: one mutable database plus a bounded cache of
    maintained {!Resilience.Incremental} instances, driven one protocol
    line at a time.

    Transport-agnostic and exception-free: {!handle_line} maps any input
    line — malformed JSON included — to exactly one response line, so the
    whole protocol is exercised in-process by the test suite and
    [bin/resil] only adds socket/stdio plumbing.

    {b Session cache.}  Questions are answered by incremental instances
    keyed by (canonical query text, semantics, exact), each pinned to the
    base database fingerprint it is in sync with.  [insert]/[delete]
    mutate the base {e and} every cached instance (the delta-maintenance
    fast path); [load] replaces the base and drops the cache.  A
    fingerprint mismatch — the safety net for any drift — invalidates the
    entry instead of serving a stale answer.  The cache holds at most
    [max_sessions] instances, evicting least-recently-used.

    {b Shutdown.}  {!request_stop} only flips an atomic, so it is safe
    from a signal handler.  Once stopping, new requests are refused with
    the [shutting_down] error — but every sub-request of an
    already-admitted batch is still served (graceful drain).

    {b Metrics.}  Unless created with [~metrics:false] the engine arms the
    metrics plane ({!Obs.Sink.arm_metrics}) and the flight recorder
    ({!Obs.Recorder.arm}) at startup: per-op request/solve latency
    histograms, queue-wait, cache gauges and request/timeout counters are
    maintained, the [metrics] protocol op exposes them (JSON or Prometheus
    text), and a [timeout] error's ["data"] carries the last
    flight-recorder events under ["flight_recorder"]. *)

type t

val create : ?metrics:bool -> ?max_sessions:int -> ?max_line:int -> unit -> t
(** Empty database, empty cache.  [metrics] (default [true]) arms the
    process-wide metrics plane and flight recorder — it never enables span
    buffering, so memory stays bounded.  [max_sessions] defaults to 8
    (min 1); [max_line] (payload cap in bytes, rejected with [too_large])
    defaults to 1 MiB. *)

val handle_line : ?received_at:float -> t -> string -> string
(** One request line in, one response line out (no trailing newline).
    Never raises.  [received_at] (an {!Obs.Clock.now} stamp taken by the
    transport when the line arrived) feeds the queue-wait histogram. *)

val request_stop : t -> unit
(** Flip the stop flag — async-signal-safe (one atomic store). *)

val stopping : t -> bool

val max_line : t -> int
