(** Minimal JSON values for the serve protocol (see {!Protocol}): parse one
    request line, print one response line.  Self-contained — the server
    adds no dependency for this.

    Printing is deterministic: object members keep their construction
    order, integers print as integers, and floats print with enough digits
    to round-trip (integral floats as [x.0]).  Parsing accepts all of RFC
    8259 except non-finite numbers; [\u] escapes are decoded to UTF-8. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** One line, no trailing newline. *)

val of_string : string -> t
(** @raise Parse_error on malformed input (including trailing garbage). *)

val of_string_opt : string -> t option

(** {1 Accessors} — shape-tolerant reads used by request decoding. *)

val member : string -> t -> t option
(** Object member lookup; [None] on non-objects too. *)

val to_string_opt : t -> string option
val to_int_opt : t -> int option
(** Accepts integral floats (JSON has one number type). *)

val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
