open Relalg
open Resilience

(* The serve state machine: one mutable database plus a small cache of
   maintained {!Resilience.Incremental} instances, driven line-by-line by
   {!handle_line}.  The engine is transport-agnostic and never raises, so
   the whole protocol is testable in-process over a string loopback —
   [bin/resil] only adds the socket/stdio plumbing. *)

type entry = {
  ekey : string * bool * bool;  (* canonical query text, bag, exact *)
  mutable efp : int64;  (* base-db fingerprint the instance is in sync with *)
  einc : Incremental.t;
  mutable elast : int;  (* LRU clock *)
}

(* --- metrics-plane instruments -------------------------------------------- *)

(* Registered eagerly for the full (finite) op vocabulary, never lazily per
   request: the exposition's key set is a property of the build, not of
   which ops a run happened to serve, so metrics goldens are stable across
   runs and job counts. *)
let op_names =
  [
    "ping"; "stats"; "metrics"; "shutdown"; "load"; "insert"; "delete";
    "resilience"; "responsibility"; "rank"; "enumerate"; "batch"; "invalid";
  ]

let ask_ops = [ "resilience"; "responsibility"; "rank"; "enumerate" ]

let h_request =
  List.map
    (fun op ->
      ( op,
        Obs.Metrics.histogram ~help:"End-to-end seconds per request line" ~labels:[ ("op", op) ]
          "serve.request.seconds" ))
    op_names

let h_solve =
  List.map
    (fun op ->
      ( op,
        Obs.Metrics.histogram ~help:"Solver seconds per question" ~labels:[ ("op", op) ]
          "serve.solve.seconds" ))
    ask_ops

let h_queue =
  Obs.Metrics.histogram ~help:"Seconds between transport receipt and dispatch"
    "serve.queue.seconds"

let g_sessions = Obs.Metrics.gauge ~help:"Cached incremental sessions" "serve.cache.sessions"
let g_hit_ratio = Obs.Metrics.gauge ~help:"Session cache hit ratio" "serve.cache.hit_ratio"
let g_db_tuples = Obs.Metrics.gauge ~help:"Tuples in the base database" "serve.db.tuples"
let c_requests = Obs.Metrics.counter ~help:"Request lines handled" "serve.requests.total"

let c_timeouts =
  Obs.Metrics.counter ~help:"Questions ended by an expired deadline" "serve.timeouts.total"

let op_of_question = function
  | Protocol.Resilience -> "resilience"
  | Protocol.Responsibility _ -> "responsibility"
  | Protocol.Rank -> "rank"
  | Protocol.Enumerate _ -> "enumerate"

let op_name = function
  | Protocol.Ping -> "ping"
  | Protocol.Stats -> "stats"
  | Protocol.Metrics _ -> "metrics"
  | Protocol.Shutdown -> "shutdown"
  | Protocol.Load _ -> "load"
  | Protocol.Insert _ -> "insert"
  | Protocol.Delete _ -> "delete"
  | Protocol.Batch _ -> "batch"
  | Protocol.Ask a -> op_of_question a.Protocol.question

type t = {
  mutable db : Database.t;
  mutable entries : entry list;
  max_sessions : int;
  max_line : int;
  stop : bool Atomic.t;
      (* The only field a signal handler may touch: admission control reads
         it, [request_stop] sets it, nothing here takes a lock. *)
  mutable tick : int;
  mutable served : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable invalidations : int;
}

let create ?(metrics = true) ?(max_sessions = 8) ?(max_line = 1 lsl 20) () =
  (* A server is long-running: arm the metrics plane and the flight
     recorder at startup and leave them on.  Neither enables span
     buffering (that stays behind [--trace]), so memory is bounded. *)
  if metrics then begin
    Obs.Sink.arm_metrics ();
    Obs.Recorder.arm ()
  end;
  {
    db = Database.create ();
    entries = [];
    max_sessions = max 1 max_sessions;
    max_line;
    stop = Atomic.make false;
    tick = 0;
    served = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
  }

let request_stop t = Atomic.set t.stop true
let stopping t = Atomic.get t.stop
let max_line t = t.max_line

(* --- session cache -------------------------------------------------------- *)

let drop_entry t e =
  t.entries <- List.filter (fun e' -> e' != e) t.entries

let session t ~key q =
  let fp = Database.fingerprint t.db in
  t.tick <- t.tick + 1;
  match List.find_opt (fun e -> e.ekey = key) t.entries with
  | Some e when e.efp = fp ->
    t.hits <- t.hits + 1;
    e.elast <- t.tick;
    e.einc
  | found ->
    (match found with
    | Some stale ->
      (* The base moved under the cached instance (e.g. a [load]): the
         maintained witnesses no longer describe this database. *)
      drop_entry t stale;
      t.invalidations <- t.invalidations + 1
    | None -> ());
    t.misses <- t.misses + 1;
    if List.length t.entries >= t.max_sessions then begin
      let lru =
        List.fold_left
          (fun acc e -> match acc with Some a when a.elast <= e.elast -> acc | _ -> Some e)
          None t.entries
      in
      match lru with
      | Some victim ->
        drop_entry t victim;
        t.evictions <- t.evictions + 1
      | None -> ()
    end;
    let _, _, exact = key in
    let _, bag, _ = key in
    let sem = if bag then Problem.Bag else Problem.Set in
    let inc = Incremental.create ~exact sem q t.db in
    t.entries <- { ekey = key; efp = fp; einc = inc; elast = t.tick } :: t.entries;
    inc

(* --- mutations ------------------------------------------------------------ *)

(* Parse one tuple line into a scratch database sharing the symbol table, so
   constants intern identically but the base is untouched by parsing. *)
let parse_tuple t line =
  let scratch = Database.create ~symbols:(Database.symbols t.db) () in
  match Database_io.parse_line scratch line with
  | Some tid -> Ok (Database.tuple scratch tid)
  | None -> Error "blank tuple line"
  | exception Invalid_argument msg -> Error msg

(* After a mutation every cached instance must mirror the base exactly —
   same tuples, same ids.  Ids stay in lockstep because [Database.copy]
   preserves the id counter and every mutation goes through here; the
   fingerprint re-check is the safety net that turns any drift into a cache
   miss instead of a wrong answer. *)
let resync t =
  let fp = Database.fingerprint t.db in
  t.entries <-
    List.filter
      (fun e ->
        if Database.fingerprint (Incremental.db e.einc) = fp then begin
          e.efp <- fp;
          true
        end
        else begin
          t.invalidations <- t.invalidations + 1;
          false
        end)
      t.entries

let do_load t data =
  match Database_io.parse_string data with
  | exception Invalid_argument msg -> Error msg
  | db ->
    t.db <- db;
    t.invalidations <- t.invalidations + List.length t.entries;
    t.entries <- [];
    Ok (Json.Obj [ ("tuples", Json.Int (Database.num_tuples db)) ])

let do_insert t line =
  match parse_tuple t line with
  | Error msg -> Error msg
  | Ok info -> (
    match Database.add ~mult:info.Database.mult ~exo:info.Database.exo t.db info.Database.rel
            info.Database.args
    with
    | exception Invalid_argument msg -> Error msg
    | id ->
      List.iter
        (fun e ->
          ignore
            (Incremental.insert ~mult:info.Database.mult ~exo:info.Database.exo e.einc
               info.Database.rel info.Database.args))
        t.entries;
      resync t;
      Ok (Json.Obj [ ("tuple_id", Json.Int id) ]))

let do_delete t line =
  match parse_tuple t line with
  | Error msg -> Error msg
  | Ok info -> (
    match Database.find t.db info.Database.rel info.Database.args with
    | None -> Error "tuple not found"
    | Some id ->
      Database.remove t.db id;
      List.iter (fun e -> Incremental.delete e.einc id) t.entries;
      resync t;
      Ok (Json.Obj [ ("tuple_id", Json.Int id) ]))

(* --- questions ------------------------------------------------------------ *)

let stats_json (s : Session.stats) =
  Json.Obj
    [
      ("nodes", Json.Int s.Session.nodes);
      ("root_lp", Json.Float s.Session.root_lp);
      ("root_integral", Json.Bool s.Session.root_integral);
      ("certified", Json.Bool s.Session.certified);
      ("pivots", Json.Int s.Session.pivots);
      ("refactors", Json.Int s.Session.refactors);
      ("solve_ms", Json.Float (1000. *. s.Session.solve_time));
    ]

let tuples_json t tids =
  Json.List (List.map (fun tid -> Json.Str (Database_io.print_tuple t.db tid)) tids)

type reply = Result of Json.t | Err of Protocol.error_code * string * Json.t option

let timeout_err incumbent =
  Err
    ( Protocol.Timeout,
      "deadline expired",
      Some
        (Json.Obj
           [
             ( "incumbent",
               match incumbent with Some v -> Json.Int v | None -> Json.Null );
           ]) )

let res_reply t = function
  | Session.Solved a ->
    Result
      (Json.Obj
         [
           ("status", Json.Str "solved");
           ("value", Json.Int a.Session.res_value);
           ("contingency", tuples_json t a.Session.contingency);
           ("stats", stats_json a.Session.res_stats);
         ])
  | Session.Query_false ->
    Result (Json.Obj [ ("status", Json.Str "query_false"); ("value", Json.Int 0) ])
  | Session.No_contingency -> Result (Json.Obj [ ("status", Json.Str "no_contingency") ])
  | Session.Budget_exhausted incumbent -> timeout_err incumbent

let rsp_reply t = function
  | Session.Solved a ->
    Result
      (Json.Obj
         [
           ("status", Json.Str "solved");
           ("value", Json.Int a.Session.rsp_value);
           ( "responsibility",
             Json.Float (1.0 /. (1.0 +. float_of_int a.Session.rsp_value)) );
           ("contingency", tuples_json t a.Session.responsibility_set);
           ("stats", stats_json a.Session.rsp_stats);
         ])
  | Session.Query_false ->
    Result (Json.Obj [ ("status", Json.Str "query_false") ])
  | Session.No_contingency -> Result (Json.Obj [ ("status", Json.Str "no_contingency") ])
  | Session.Budget_exhausted incumbent -> timeout_err incumbent

let enum_stats_json (s : Enumerate.stats) =
  Json.Obj
    [
      ("cuts", Json.Int s.Enumerate.cuts);
      ("solves", Json.Int s.Enumerate.solves);
      ("nodes", Json.Int s.Enumerate.nodes);
      ("first_pivots", Json.Int s.Enumerate.first_pivots);
      ("cut_pivots", Json.Int s.Enumerate.cut_pivots);
      ("refactors", Json.Int s.Enumerate.refactors);
      ("solve_ms", Json.Float (1000. *. s.Enumerate.time));
    ]

(* The full family is enumerated and counted; [limit] only truncates the
   reported sets (canonical order), so a limited reply is a prefix of the
   unlimited one and ["count"] still reports the family size. *)
let enum_reply t limit = function
  | Session.Solved fam ->
    let shown =
      match limit with
      | Some n -> Enumerate.take n fam.Enumerate.sets
      | None -> fam.Enumerate.sets
    in
    let crit_row (c : Enumerate.criticality) =
      Json.Obj
        [
          ("tuple", Json.Str (Database_io.print_tuple t.db c.Enumerate.crit_tuple));
          ("count", Json.Int c.Enumerate.crit_count);
          ("total", Json.Int c.Enumerate.crit_total);
          ("criticality", Json.Float c.Enumerate.crit_float);
          ("exact", Json.Str (Numeric.Rat.to_string c.Enumerate.crit_exact));
        ]
    in
    Result
      (Json.Obj
         [
           ("status", Json.Str "solved");
           ("value", Json.Int fam.Enumerate.opt);
           ("count", Json.Int (List.length fam.Enumerate.sets));
           ("exhausted", Json.Bool fam.Enumerate.exhausted);
           ("sets", Json.List (List.map (tuples_json t) shown));
           ( "criticality",
             Json.List (List.map crit_row (Enumerate.criticality fam)) );
           ("stats", enum_stats_json fam.Enumerate.fstats);
         ])
  | Session.Query_false ->
    Result (Json.Obj [ ("status", Json.Str "query_false"); ("value", Json.Int 0) ])
  | Session.No_contingency -> Result (Json.Obj [ ("status", Json.Str "no_contingency") ])
  | Session.Budget_exhausted incumbent -> timeout_err incumbent

let do_ask t (a : Protocol.ask) =
  match Cq_parser.parse_with t.db a.Protocol.query with
  | exception Invalid_argument msg -> Err (Protocol.Bad_query, msg, None)
  | q -> (
    let time_limit =
      match a.Protocol.deadline_ms with
      | Some ms -> Some (float_of_int ms /. 1000.)
      | None -> None
    in
    match time_limit with
    | Some budget when budget <= 0. -> timeout_err None
    | _ -> (
      let key = (Cq.to_string q, a.Protocol.bag, a.Protocol.exact) in
      let inc = session t ~key q in
      match a.Protocol.question with
      | Protocol.Resilience -> res_reply t (Incremental.resilience ?time_limit inc)
      | Protocol.Responsibility tuple -> (
        match parse_tuple t tuple with
        | Error msg -> Err (Protocol.Bad_request, msg, None)
        | Ok info -> (
          match Database.find t.db info.Database.rel info.Database.args with
          | None -> Err (Protocol.Not_found, "tuple not found", None)
          | Some tid -> rsp_reply t (Incremental.responsibility ?time_limit inc tid)))
      | Protocol.Enumerate target -> (
        (* Enumeration rides the same maintained incremental session the
           point questions use: the warm engine, witnesses and presolve are
           all reused, the cut chain is per-request delta state. *)
        let ses = Incremental.session inc in
        match target with
        | None ->
          enum_reply t a.Protocol.limit
            (Session.enumerate_resilience ?time_limit ~jobs:a.Protocol.jobs ses)
        | Some tuple -> (
          match parse_tuple t tuple with
          | Error msg -> Err (Protocol.Bad_request, msg, None)
          | Ok info -> (
            match Database.find t.db info.Database.rel info.Database.args with
            | None -> Err (Protocol.Not_found, "tuple not found", None)
            | Some tid ->
              enum_reply t a.Protocol.limit
                (Session.enumerate_responsibility ?time_limit ~jobs:a.Protocol.jobs ses
                   tid))))
      | Protocol.Rank ->
        let ranked =
          Incremental.ranking_par ?time_limit ~jobs:a.Protocol.jobs inc
        in
        let row (tid, k, rho) =
          Json.Obj
            [
              ("tuple", Json.Str (Database_io.print_tuple t.db tid));
              ("k", Json.Int k);
              ("responsibility", Json.Float rho);
            ]
        in
        Result (Json.Obj [ ("ranking", Json.List (List.map row ranked)) ])))

(* --- ask instrumentation --------------------------------------------------- *)

let cnt_pivots = Obs.Counter.create "simplex.pivots"
let cnt_nodes = Obs.Counter.create "bb.nodes"

(* Last retained flight-recorder events, rendered for a [timeout] error's
   ["data"].  Every field the engine records is a decimal-numeric string
   (the fingerprint is written in unsigned decimal, not hex, for exactly
   this reason), so all values render as JSON numbers and the serve goldens'
   digit normalization keeps the exposition deterministic. *)
let recorder_events_json () =
  let evs = Obs.Recorder.dump () in
  let n = List.length evs in
  let evs = if n > 16 then List.filteri (fun i _ -> i >= n - 16) evs else evs in
  Json.List
    (List.map
       (fun (e : Obs.Recorder.event) ->
         let field (k, v) =
           match float_of_string_opt v with
           | Some f -> (k, Json.Float f)
           | None -> (k, Json.Str v)
         in
         Json.Obj
           (("t", Json.Float e.Obs.Recorder.ev_t)
           :: ("dom", Json.Int e.Obs.Recorder.ev_dom)
           :: ("op", Json.Str e.Obs.Recorder.ev_op)
           :: List.map field e.Obs.Recorder.ev_fields))
       evs)

let attach_recorder data =
  let base =
    match data with
    | Some (Json.Obj fields) -> fields
    | Some d -> [ ("incumbent", d) ]
    | None -> []
  in
  Some (Json.Obj (base @ [ ("flight_recorder", recorder_events_json ()) ]))

(* Wrap a question with the per-op solve histogram, a flight-recorder
   event, and — on a deadline expiry — the recorder dump attached to the
   error payload.  One atomic load when nothing is armed. *)
let timed_ask t (a : Protocol.ask) =
  if not (Obs.Sink.recording () || Obs.Recorder.armed ()) then do_ask t a
  else begin
    let op = op_of_question a.Protocol.question in
    let t0 = Obs.Clock.now () in
    let p0 = Obs.Counter.value cnt_pivots and n0 = Obs.Counter.value cnt_nodes in
    let reply = do_ask t a in
    let dt = Obs.Clock.elapsed t0 in
    (match List.assoc_opt op h_solve with
    | Some h -> Obs.Metrics.observe h dt
    | None -> ());
    let timed_out =
      match reply with Err (Protocol.Timeout, _, _) -> true | _ -> false
    in
    if timed_out then Obs.Metrics.incr c_timeouts;
    let outcome =
      match reply with
      | Result _ -> "ok"
      | Err (code, _, _) -> Protocol.error_code_name code
    in
    Obs.Recorder.note
      ~fields:
        [
          ("fingerprint", Printf.sprintf "%Lu" (Database.fingerprint t.db));
          ("solve_ms", Printf.sprintf "%.3f" (1000. *. dt));
          ("pivots", string_of_int (Obs.Counter.value cnt_pivots - p0));
          ("nodes", string_of_int (Obs.Counter.value cnt_nodes - n0));
          ("outcome", outcome);
        ]
      op;
    match reply with
    | Err (Protocol.Timeout, msg, data) when Obs.Recorder.armed () ->
      Err (Protocol.Timeout, msg, attach_recorder data)
    | reply -> reply
  end

let do_metrics fmt =
  match fmt with
  | `Prometheus ->
    Json.Obj
      [
        ("format", Json.Str "prometheus");
        ("text", Json.Str (Obs.Metrics.prometheus ()));
      ]
  | `Json -> Json.of_string (Obs.Metrics.json_of (Obs.Metrics.snapshot ()))

let do_stats t =
  Json.Obj
    [
      ("served", Json.Int t.served);
      ("sessions", Json.Int (List.length t.entries));
      ("hits", Json.Int t.hits);
      ("misses", Json.Int t.misses);
      ("evictions", Json.Int t.evictions);
      ("invalidations", Json.Int t.invalidations);
      ( "db",
        Json.Obj
          [
            ("tuples", Json.Int (Database.num_tuples t.db));
            ("fingerprint", Json.Str (Printf.sprintf "%016Lx" (Database.fingerprint t.db)));
          ] );
    ]

(* --- dispatch ------------------------------------------------------------- *)

let finish ~id = function
  | Result r -> Protocol.ok ~id r
  | Err (code, msg, data) -> Protocol.error ?data ~id code msg

(* [drain] marks requests admitted as part of a batch: once a batch is
   admitted, every sub-request in the snapshot is served even if a shutdown
   lands mid-batch — the graceful-drain contract. *)
let rec respond t ~drain (env : Protocol.envelope) =
  let id = env.Protocol.id in
  if stopping t && not drain && env.Protocol.req <> Protocol.Shutdown then
    Protocol.error ~id Protocol.Shutting_down "server is draining"
  else
    match env.Protocol.req with
    | Protocol.Ping -> Protocol.ok ~id (Json.Obj [ ("pong", Json.Bool true) ])
    | Protocol.Stats -> Protocol.ok ~id (do_stats t)
    | Protocol.Metrics fmt -> Protocol.ok ~id (do_metrics fmt)
    | Protocol.Shutdown ->
      request_stop t;
      Protocol.ok ~id (Json.Obj [ ("stopping", Json.Bool true) ])
    | Protocol.Load data ->
      finish ~id
        (match do_load t data with
        | Ok r -> Result r
        | Error msg -> Err (Protocol.Bad_request, msg, None))
    | Protocol.Insert line ->
      finish ~id
        (match do_insert t line with
        | Ok r -> Result r
        | Error msg -> Err (Protocol.Bad_request, msg, None))
    | Protocol.Delete line ->
      finish ~id
        (match do_delete t line with
        | Ok r -> Result r
        | Error msg ->
          if msg = "tuple not found" then Err (Protocol.Not_found, msg, None)
          else Err (Protocol.Bad_request, msg, None))
    | Protocol.Ask a -> finish ~id (timed_ask t a)
    | Protocol.Batch envs ->
      let replies = List.map (fun e -> respond t ~drain:true e) envs in
      Protocol.ok ~id (Json.Obj [ ("responses", Json.List replies) ])

let handle_line ?received_at t line =
  t.served <- t.served + 1;
  let live = Obs.Sink.recording () in
  let t0 = if live then Obs.Clock.now () else 0. in
  if live then begin
    Obs.Metrics.incr c_requests;
    match received_at with
    | Some r -> Obs.Metrics.observe h_queue (Float.max 0. (t0 -. r))
    | None -> ()
  end;
  let op, response =
    if String.length line > t.max_line then
      ( "invalid",
        Protocol.error ~id:Json.Null Protocol.Too_large
          (Printf.sprintf "request line exceeds %d bytes" t.max_line) )
    else
      match Protocol.parse_request line with
      | Protocol.Invalid (id, code, msg) -> ("invalid", Protocol.error ~id code msg)
      | Protocol.Request env ->
        ( op_name env.Protocol.req,
          try respond t ~drain:false env
          with e ->
            Protocol.error ~id:env.Protocol.id Protocol.Bad_request (Printexc.to_string e)
        )
  in
  if live then begin
    (match List.assoc_opt op h_request with
    | Some h -> Obs.Metrics.observe h (Obs.Clock.elapsed t0)
    | None -> ());
    Obs.Metrics.set g_sessions (float_of_int (List.length t.entries));
    let asks = t.hits + t.misses in
    Obs.Metrics.set g_hit_ratio
      (if asks = 0 then 0. else float_of_int t.hits /. float_of_int asks);
    Obs.Metrics.set g_db_tuples (float_of_int (Database.num_tuples t.db))
  end;
  Protocol.render response
