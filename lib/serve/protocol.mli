(** The wire protocol of [resil serve]: line-oriented JSON.

    One request object per line in, one response object per line out:

    {v
    -> {"id":1,"op":"load","data":"R(1,2)\nS(2,3)"}
    <- {"id":1,"ok":true,"result":{"tuples":2}}
    -> {"id":2,"op":"resilience","query":"R(x,y), S(y,z)"}
    <- {"id":2,"ok":true,"result":{"status":"solved","value":1,...}}
    -> {"id":3,"op":"nope"}
    <- {"id":3,"ok":false,"error":{"code":"unknown_op","message":"..."}}
    v}

    Requests carry a free-form ["id"] member that is echoed verbatim in the
    response (defaulting to [null]); a ["batch"] request carries sub-requests
    (one nesting level only) whose responses come back in order inside one
    response.  This module is pure decode/encode — the state machine lives
    in {!Engine}. *)

type question =
  | Resilience
  | Responsibility of string
  | Rank
  | Enumerate of string option
      (** [op:"enumerate"]: every minimum contingency set.  Without a
          ["tuple"] field the resilience family; with one, that tuple's
          responsibility family. *)

type ask = {
  query : string;  (** Conjunctive query text, e.g. ["R(x,y), S(y,z)"]. *)
  bag : bool;
  exact : bool;
  deadline_ms : int option;
      (** Per-request wall-clock budget.  A non-positive deadline is
          rejected up front ([timeout]) without touching the solver.  For
          [enumerate] it bounds the whole cut chain: on expiry the partial
          family streamed so far is returned with [exhausted:false]. *)
  jobs : int;  (** Pool fan-out for [rank] and [enumerate] (0 = all domains). *)
  limit : int option;
      (** [enumerate] only: report at most this many sets.  Truncation is
          presentation-level — the family is enumerated (and counted)
          in full, then cut to the first [limit] sets of the canonical
          order, so the reply is a prefix of the unlimited one. *)
  question : question;
}

type request =
  | Ping
  | Load of string  (** Replace the database (text format of {!Relalg.Database_io}). *)
  | Insert of string  (** One tuple line, e.g. ["S(1,1) x2"]. *)
  | Delete of string
  | Ask of ask
  | Stats
  | Metrics of [ `Json | `Prometheus ]
      (** [op:"metrics"]: snapshot of the metrics plane (per-op latency
          histograms, cache gauges, counters).  The optional ["format"]
          field selects the exposition: ["json"] (default, structured
          result) or ["prometheus"] (text format 0.0.4 in a ["text"]
          member). *)
  | Shutdown
  | Batch of envelope list

and envelope = { id : Json.t; req : request }

type error_code =
  | Malformed  (** The line is not valid JSON. *)
  | Too_large  (** The line exceeds the server's payload cap. *)
  | Unknown_op
  | Bad_request  (** Valid JSON, known op, but wrong/missing fields. *)
  | Bad_query  (** The query text does not parse. *)
  | Not_found  (** Tuple not present (delete/responsibility). *)
  | Timeout  (** Deadline expired — carries the incumbent value if any. *)
  | Shutting_down  (** Admission refused: the server is draining. *)

val error_code_name : error_code -> string
(** The stable wire name, e.g. ["too_large"] — locked by a golden test. *)

type parse_result =
  | Request of envelope
  | Invalid of Json.t * error_code * string
      (** Recovered request id (or [Null]), error code, human message. *)

val parse_request : string -> parse_result
(** Never raises: malformed lines come back as [Invalid]. *)

val ok : id:Json.t -> Json.t -> Json.t
(** [{"id":id,"ok":true,"result":...}]. *)

val error : ?data:Json.t -> id:Json.t -> error_code -> string -> Json.t
(** [{"id":id,"ok":false,"error":{"code":...,"message":...[,"data":...]}}]. *)

val render : Json.t -> string
(** One response line (no trailing newline). *)
