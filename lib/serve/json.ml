(* Minimal JSON for the serve protocol: parse one request line, print one
   response line.  Hand-rolled so the server adds no dependency; covers all
   of RFC 8259 except that parsing accepts only finite numbers (the printer
   never emits non-finite ones either). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

(* --- printing ------------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_integer f && Float.abs f < 1e15 then
      Buffer.add_string buf (Printf.sprintf "%.1f" f)
    else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Str s -> escape buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        write buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write buf j;
  Buffer.contents buf

(* --- parsing -------------------------------------------------------------- *)

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.s
    && match c.s.[c.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> fail "expected '%c' at offset %d, found '%c'" ch c.pos x
  | None -> fail "expected '%c' at offset %d, found end of input" ch c.pos

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail "invalid literal at offset %d" c.pos

let hex_digit ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> fail "invalid \\u escape"

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    if c.pos >= String.length c.s then fail "unterminated string";
    let ch = c.s.[c.pos] in
    c.pos <- c.pos + 1;
    match ch with
    | '"' -> Buffer.contents buf
    | '\\' ->
      (if c.pos >= String.length c.s then fail "unterminated escape";
       let e = c.s.[c.pos] in
       c.pos <- c.pos + 1;
       match e with
       | '"' -> Buffer.add_char buf '"'
       | '\\' -> Buffer.add_char buf '\\'
       | '/' -> Buffer.add_char buf '/'
       | 'n' -> Buffer.add_char buf '\n'
       | 't' -> Buffer.add_char buf '\t'
       | 'r' -> Buffer.add_char buf '\r'
       | 'b' -> Buffer.add_char buf '\b'
       | 'f' -> Buffer.add_char buf '\012'
       | 'u' ->
         if c.pos + 4 > String.length c.s then fail "truncated \\u escape";
         let code =
           (hex_digit c.s.[c.pos] lsl 12)
           lor (hex_digit c.s.[c.pos + 1] lsl 8)
           lor (hex_digit c.s.[c.pos + 2] lsl 4)
           lor hex_digit c.s.[c.pos + 3]
         in
         c.pos <- c.pos + 4;
         (match Uchar.of_int code with
         | u -> Buffer.add_utf_8_uchar buf u
         | exception Invalid_argument _ -> Buffer.add_char buf '?')
       | e -> fail "invalid escape '\\%c'" e);
      go ()
    | ch when Char.code ch < 0x20 -> fail "raw control character in string"
    | ch ->
      Buffer.add_char buf ch;
      go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let advance () = c.pos <- c.pos + 1 in
  if peek c = Some '-' then advance ();
  while match peek c with Some ('0' .. '9') -> true | _ -> false do
    advance ()
  done;
  if peek c = Some '.' then begin
    is_float := true;
    advance ();
    while match peek c with Some ('0' .. '9') -> true | _ -> false do
      advance ()
    done
  end;
  (match peek c with
  | Some ('e' | 'E') ->
    is_float := true;
    advance ();
    (match peek c with Some ('+' | '-') -> advance () | _ -> ());
    while match peek c with Some ('0' .. '9') -> true | _ -> false do
      advance ()
    done
  | _ -> ());
  let text = String.sub c.s start (c.pos - start) in
  if !is_float then
    match float_of_string_opt text with
    | Some f when Float.is_finite f -> Float f
    | _ -> fail "invalid number %S" text
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      (* Integer literal overflowing the int range: keep it as a float. *)
      match float_of_string_opt text with
      | Some f when Float.is_finite f -> Float f
      | _ -> fail "invalid number %S" text)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some '[' ->
    expect c '[';
    skip_ws c;
    if peek c = Some ']' then begin
      expect c ']';
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          expect c ',';
          items (v :: acc)
        | Some ']' ->
          expect c ']';
          List (List.rev (v :: acc))
        | _ -> fail "expected ',' or ']' at offset %d" c.pos
      in
      items []
    end
  | Some '{' ->
    expect c '{';
    skip_ws c;
    if peek c = Some '}' then begin
      expect c '}';
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          expect c ',';
          members ((k, v) :: acc)
        | Some '}' ->
          expect c '}';
          Obj (List.rev ((k, v) :: acc))
        | _ -> fail "expected ',' or '}' at offset %d" c.pos
      in
      members []
    end
  | Some ch -> fail "unexpected character '%c' at offset %d" ch c.pos

let of_string s =
  let c = { s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail "trailing garbage at offset %d" c.pos;
  v

let of_string_opt s = match of_string s with v -> Some v | exception Parse_error _ -> None

(* --- accessors ------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None

let to_int_opt = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f <= 1e15 -> Some (int_of_float f)
  | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None

let to_list_opt = function List xs -> Some xs | _ -> None
