open Relalg

type config = {
  domain : int;
  max_generators : int;
  exo_rels : string list;
  work_limit : int;
  time_limit : float;
}

let default_config =
  { domain = 5; max_generators = 4; exo_rels = []; work_limit = 2_000_000; time_limit = 120.0 }

type stats = { candidates : int; checked : int; elapsed : float }

type endpoint = (string * int array) list

(* Endpoint pairs are subsets of a canonical witness's endogenous tuples
   (paper footnote 11): take the canonical valuation var_i -> i, keep a
   subset of its tuples, and rename its constants to 1..k for the start and
   k+1..2k for the terminal — isomorphic, non-identical, constant-disjoint
   by construction.  Subsets of size 1 and 2 cover all of the paper's
   gadgets; singletons come first so minimal certificates are found first. *)
let endpoint_candidates q =
  let vars = Cq.vars q in
  let const_of v =
    let rec idx i = function
      | [] -> assert false
      | x :: rest -> if x = v then i else idx (i + 1) rest
    in
    1 + idx 0 vars
  in
  let tuples =
    Array.to_list q.Cq.atoms
    |> List.filter (fun (a : Cq.atom) -> not a.Cq.exo)
    |> List.map (fun (a : Cq.atom) ->
           ( a.Cq.rel,
             Array.map (function Cq.Const c -> c | Cq.Var v -> const_of v) a.Cq.terms ))
    |> List.sort_uniq compare
  in
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
      let rest_subsets = subsets rest in
      rest_subsets @ List.map (fun s -> x :: s) rest_subsets
  in
  let candidate subset =
    let consts =
      List.concat_map (fun (_, args) -> Array.to_list args) subset |> List.sort_uniq compare
    in
    let k = List.length consts in
    let rank c =
      let rec idx i = function
        | [] -> assert false
        | x :: rest -> if x = c then i else idx (i + 1) rest
      in
      idx 0 consts
    in
    let rename shift (rel, args) = (rel, Array.map (fun c -> shift + 1 + rank c) args) in
    (List.map (rename 0) subset, List.map (rename k) subset)
  in
  subsets tuples
  |> List.filter (fun s -> s <> [] && List.length s <= 2)
  |> List.sort (fun a b -> compare (List.length a) (List.length b))
  |> List.map candidate
  |> List.sort_uniq compare

(* All valuations of the query variables over 1..d, presented as the tuple
   list they generate: (rel, args) per atom, deduplicated. *)
let valuations q d =
  let vars = Array.of_list (Cq.vars q) in
  let n = Array.length vars in
  let assign = Array.make n 1 in
  let out = ref [] in
  let rec go i =
    if i = n then begin
      let binding v =
        let rec find j = if vars.(j) = v then assign.(j) else find (j + 1) in
        find 0
      in
      let tuples =
        Array.to_list q.Cq.atoms
        |> List.map (fun (at : Cq.atom) ->
               ( at.Cq.rel,
                 Array.map (function Cq.Const c -> c | Cq.Var v -> binding v) at.Cq.terms ))
        |> List.sort_uniq compare
      in
      out := tuples :: !out
    end
    else
      for v = 1 to d do
        assign.(i) <- v;
        go (i + 1)
      done
  in
  go 0;
  !out

let contains_all gen endpoint =
  List.for_all (fun (rel, args) -> List.exists (fun (r, a) -> r = rel && a = args) gen) endpoint

(* Combinations (order-insensitive, without repetition) of size k. *)
let rec combinations k xs =
  if k = 0 then [ [] ]
  else
    match xs with
    | [] -> []
    | x :: rest -> List.map (fun c -> x :: c) (combinations (k - 1) rest) @ combinations k rest

let try_candidate q exo_rels s_tuples t_tuples gens =
  let db = Database.create () in
  (* set semantics: a tuple shared by several generators is one tuple *)
  List.concat gens |> List.sort_uniq compare
  |> List.iter (fun (rel, args) ->
         ignore (Database.add ~exo:(List.mem rel exo_rels) db rel args));
  let find_ids tuples =
    List.map (fun (rel, args) -> Database.find db rel args) tuples
    |> List.fold_left
         (fun acc id -> match (acc, id) with Some acc, Some id -> Some (id :: acc) | _ -> None)
         (Some [])
  in
  match (find_ids s_tuples, find_ids t_tuples) with
  | Some start, Some terminal ->
    let jp = { Join_path.q; db; start; terminal } in
    (match Join_path.check_ijp Resilience.Problem.Set jp with Ok _ -> Some jp | Error _ -> None)
  | _ -> None

(* Per-endpoint search state, so that the driver can interleave endpoint
   pairs level by level (all pairs at k generators before any pair at k+1 —
   minimal certificates are found first and no pair starves the others). *)
type ep_state = {
  s : endpoint;
  t : endpoint;
  with_s : (string * int array) list list;
  with_t : (string * int array) list list;
  seen : ((string * int array) list, unit) Hashtbl.t;
}

let search_level config q all state ~k ~t0 ~candidates ~checked =
  let found = ref None in
  let out_of_budget () =
    !candidates >= config.work_limit || Lp.Clock.elapsed t0 > config.time_limit
  in
  let consider gens =
    if !found = None && not (out_of_budget ()) then begin
      incr candidates;
      let key = List.sort_uniq compare (List.concat gens) in
      if not (Hashtbl.mem state.seen key) then begin
        Hashtbl.add state.seen key ();
        incr checked;
        match try_candidate q config.exo_rels state.s state.t gens with
        | Some jp -> found := Some jp
        | None -> ()
      end
    end
  in
  let middles = combinations (k - 2) all in
  List.iter
    (fun gs ->
      if !found = None then
        List.iter
          (fun gt ->
            if !found = None then
              List.iter (fun middle -> consider ((gs :: middle) @ [ gt ])) middles)
          state.with_t)
    state.with_s;
  !found

let find_many ?(config = default_config) q endpoint_pairs =
  let t0 = Lp.Clock.now () in
  let all = valuations q config.domain in
  let states =
    List.map
      (fun (s, t) ->
        {
          s;
          t;
          with_s = List.filter (fun g -> contains_all g s) all;
          with_t = List.filter (fun g -> contains_all g t) all;
          seen = Hashtbl.create 4096;
        })
      endpoint_pairs
  in
  let candidates = ref 0 and checked = ref 0 in
  let out_of_budget () =
    !candidates >= config.work_limit || Lp.Clock.elapsed t0 > config.time_limit
  in
  let found = ref None in
  let k = ref 2 in
  while !found = None && !k <= config.max_generators && not (out_of_budget ()) do
    List.iter
      (fun state ->
        if !found = None then
          match search_level config q all state ~k:!k ~t0 ~candidates ~checked with
          | Some jp -> found := Some jp
          | None -> ())
      states;
    incr k
  done;
  Option.map
    (fun jp -> (jp, { candidates = !candidates; checked = !checked; elapsed = Lp.Clock.elapsed t0 }))
    !found

let find_with_endpoints ?config q ~s ~t = find_many ?config q [ (s, t) ]

let find ?(config = default_config) q =
  (* Exogenous tuples cannot serve as endpoints: the vertex-cover reduction
     deletes endpoint tuples. *)
  let pairs =
    endpoint_candidates q
    |> List.filter (fun (s, _) ->
           List.for_all (fun (rel, _) -> not (List.mem rel config.exo_rels)) s)
  in
  find_many ~config q pairs
