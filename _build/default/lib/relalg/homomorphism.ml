(* A homomorphism from query [src] to query [dst] maps each variable of
   [src] to a term of [dst] (variable or constant) so that every atom of
   [src] becomes an atom of [dst].  Found by backtracking over src's atoms. *)

let exists src dst =
  let dst_atoms = Array.to_list dst.Cq.atoms in
  let mapping : (string, Cq.term) Hashtbl.t = Hashtbl.create 8 in
  let match_term s_term d_term =
    match s_term with
    | Cq.Const c -> ( match d_term with Cq.Const c' -> c = c' | Cq.Var _ -> false)
    | Cq.Var v -> (
      match Hashtbl.find_opt mapping v with
      | Some t -> t = d_term
      | None ->
        Hashtbl.add mapping v d_term;
        true)
  in
  let rec go atoms =
    match atoms with
    | [] -> true
    | (a : Cq.atom) :: rest ->
      List.exists
        (fun (b : Cq.atom) ->
          if a.Cq.rel <> b.Cq.rel || Array.length a.Cq.terms <> Array.length b.Cq.terms then false
          else begin
            let added = ref [] in
            let ok = ref true in
            Array.iteri
              (fun i s_term ->
                if !ok then begin
                  let had =
                    match s_term with Cq.Var v -> Hashtbl.mem mapping v | Cq.Const _ -> true
                  in
                  if match_term s_term b.Cq.terms.(i) then begin
                    if not had then
                      match s_term with
                      | Cq.Var v -> added := v :: !added
                      | Cq.Const _ -> ()
                  end
                  else ok := false
                end)
              a.Cq.terms;
            let result = !ok && go rest in
            if not result then List.iter (Hashtbl.remove mapping) !added;
            result
          end)
        dst_atoms
  in
  go (Array.to_list src.Cq.atoms)

let drop_atom q i =
  let atoms = Array.to_list q.Cq.atoms |> List.filteri (fun j _ -> j <> i) in
  Cq.make ~name:q.Cq.name atoms

(* Folding an atom away is sound iff there is a homomorphism from Q to the
   sub-query (the sub-query trivially maps into Q), i.e. Q is equivalent to
   Q minus the atom. *)
let rec minimize q =
  let n = Array.length q.Cq.atoms in
  if n <= 1 then q
  else begin
    let rec try_drop i =
      if i >= n then None
      else
        let q' = drop_atom q i in
        if exists q q' then Some q' else try_drop (i + 1)
    in
    match try_drop 0 with Some q' -> minimize q' | None -> q
  end

let is_minimal q = Array.length (minimize q).Cq.atoms = Array.length q.Cq.atoms

let canonical_db ?(first_const = 1) q =
  let db = Database.create () in
  let assign = Hashtbl.create 8 in
  let next = ref first_const in
  let const_of_var v =
    match Hashtbl.find_opt assign v with
    | Some c -> c
    | None ->
      let c = !next in
      incr next;
      Hashtbl.add assign v c;
      c
  in
  Array.iter
    (fun (a : Cq.atom) ->
      let args =
        Array.map (function Cq.Const c -> c | Cq.Var v -> const_of_var v) a.Cq.terms
      in
      ignore (Database.add ~exo:a.Cq.exo db a.Cq.rel args))
    q.Cq.atoms;
  let mapping = List.map (fun v -> (v, Hashtbl.find assign v)) (Cq.vars q) in
  (db, mapping)
