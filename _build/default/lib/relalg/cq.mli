(** Boolean conjunctive queries (with self-joins and constants).

    A query is a list of atoms over relation names; argument terms are
    variables or constants.  Following the paper (Definition 3.3 and prior
    work), an atom may be flagged {e exogenous}: tuples of exogenous atoms
    never participate in contingency sets.

    Queries are Boolean: all variables are existential.  Non-Boolean
    resilience questions reduce to the Boolean variant (footnote 1 of the
    paper). *)

type term = Var of string | Const of int

type atom = {
  rel : string;  (** Relation symbol; repeated symbols are self-joins. *)
  terms : term array;
  exo : bool;  (** Exogenous atoms cannot contribute contingency tuples. *)
}

type t = { name : string; atoms : atom array }

val make : ?name:string -> atom list -> t
(** @raise Invalid_argument on an empty atom list or on two atoms with the
    same relation symbol but different arities. *)

val atom : ?exo:bool -> string -> term list -> atom

(** {1 Structure} *)

val vars_of_atom : atom -> string list
(** Distinct variables, in first-occurrence order. *)

val vars : t -> string list
(** Distinct variables of the whole query, in first-occurrence order. *)

val arity : t -> string -> int
(** Arity of a relation symbol appearing in the query. @raise Not_found *)

val rel_names : t -> string list
(** Distinct relation symbols, in first-occurrence order. *)

val self_join_free : t -> bool

val endogenous_atoms : t -> int list
(** Indices of non-exogenous atoms. *)

val atoms_sharing : t -> string -> int list
(** Indices of atoms containing the given variable. *)

val connected : t -> bool
(** Is the query hypergraph connected (atoms as nodes, shared variables as
    edges)?  The paper treats only connected queries; disconnected ones are
    handled component-wise by callers. *)

val components : t -> t list
(** Connected components, each as a query (atom order preserved). *)

val atoms_connected_avoiding : t -> int -> int -> avoid:string list -> bool
(** Is there a path between the two atoms (indices) in the hypergraph that
    shares only variables outside [avoid] along the way?  This is the "path
    that uses no variable occurring in the third atom" test of the triad
    definition (Definition 8.2). *)

val var_reaches_atom_avoiding : t -> string -> int -> blocked:string list -> bool
(** Can variable [v] reach the atom (index) through co-occurrence steps that
    never pass through a variable of [blocked] (the test behind solitary
    variables, Definition 8.3)?  [v] itself may be in [blocked]. *)

val rename_rel : t -> string -> string -> t
(** Rename a relation symbol (used by linearization / dissociation). *)

val set_exo : t -> int -> bool -> t
(** Copy of the query with the exogenous flag of atom [i] replaced. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Constants print as raw integers; use {!pp_named} to resolve interned
    string constants. *)

val pp_named : Symbol.t -> Format.formatter -> t -> unit

val to_string : t -> string

val to_string_named : Symbol.t -> t -> string
