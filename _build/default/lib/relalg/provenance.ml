type expr = Tuple of Database.tuple_id | And of expr list | Or of expr list

let why q db =
  let sets = Eval.unique_tuple_sets (Eval.witnesses q db) in
  (* Irredundant DNF: drop clauses that contain another clause. *)
  List.filter
    (fun c ->
      not
        (List.exists
           (fun c' -> c' <> c && List.for_all (fun t -> List.mem t c) c')
           sets))
    sets

let vars_of clauses = List.concat clauses |> List.sort_uniq compare

(* Connected components of clauses under variable sharing: the OR-partition. *)
let or_partition clauses =
  let arr = Array.of_list clauses in
  let n = Array.length arr in
  let comp = Array.make n (-1) in
  let next = ref 0 in
  let shares a b = List.exists (fun t -> List.mem t arr.(b)) arr.(a) in
  for i = 0 to n - 1 do
    if comp.(i) < 0 then begin
      let c = !next in
      incr next;
      comp.(i) <- c;
      let changed = ref true in
      while !changed do
        changed := false;
        for a = 0 to n - 1 do
          if comp.(a) = c then
            for b = 0 to n - 1 do
              if comp.(b) < 0 && shares a b then begin
                comp.(b) <- c;
                changed := true
              end
            done
        done
      done
    end
  done;
  List.init !next (fun c ->
      Array.to_list arr |> List.filteri (fun i _ -> comp.(i) = c))

(* The AND-partition at a node with no common variable and a single OR
   component: group variables whose clause sets are disjoint (they belong to
   different branches of the same factor), take connected components, and
   verify the clause set is the exact cross product of the component
   projections. *)
let and_partition clauses =
  let vars = Array.of_list (vars_of clauses) in
  let n = Array.length vars in
  if n < 2 then None
  else begin
    let clause_set v = List.filter (fun c -> List.mem v c) clauses in
    let sets = Array.map clause_set vars in
    let disjoint a b = not (List.exists (fun c -> List.mem c sets.(b)) sets.(a)) in
    let comp = Array.make n (-1) in
    let next = ref 0 in
    for i = 0 to n - 1 do
      if comp.(i) < 0 then begin
        let c = !next in
        incr next;
        comp.(i) <- c;
        let changed = ref true in
        while !changed do
          changed := false;
          for a = 0 to n - 1 do
            if comp.(a) = c then
              for b = 0 to n - 1 do
                if comp.(b) < 0 && disjoint a b then begin
                  comp.(b) <- c;
                  changed := true
                end
              done
          done
        done
      end
    done;
    if !next < 2 then None
    else begin
      let group c =
        Array.to_list vars |> List.filteri (fun i _ -> comp.(i) = c)
      in
      let groups = List.init !next group in
      let projections =
        List.map
          (fun g ->
            List.map (fun clause -> List.filter (fun t -> List.mem t g) clause) clauses
            |> List.map (List.sort compare)
            |> List.sort_uniq compare)
          groups
      in
      (* Cross-product check.  A clause is determined by its per-group
         projections, so the clause set injects into the product of the
         projection sets; equal cardinalities then mean every combination is
         present.  A clause with an empty projection in some group breaks
         the split outright. *)
      if List.exists (List.exists (fun c -> c = [])) projections then None
      else begin
        let product_size =
          List.fold_left (fun acc p -> acc * List.length p) 1 projections
        in
        if product_size <> List.length clauses then None else Some projections
      end
    end
  end

let rec factor clauses =
  match clauses with
  | [] -> None
  | [ clause ] -> Some (And (List.map (fun t -> Tuple t) clause))
  | _ -> (
    match or_partition clauses with
    | [] -> None
    | [ _single ] -> (
      (* One OR component: factor out the common variables, if any. *)
      let common =
        List.fold_left
          (fun acc c -> List.filter (fun t -> List.mem t c) acc)
          (List.hd clauses) (List.tl clauses)
      in
      if common <> [] then begin
        let residual =
          List.map (fun c -> List.filter (fun t -> not (List.mem t common)) c) clauses
        in
        if List.exists (fun c -> c = []) residual then
          (* a clause equalled the common part; with irredundant input this
             only happens for a lone clause, handled above *)
          None
        else
          match factor residual with
          | Some sub -> Some (And (List.map (fun t -> Tuple t) common @ [ sub ]))
          | None -> None
      end
      else begin
        match and_partition clauses with
        | None -> None
        | Some projections ->
          let subs = List.map factor projections in
          if List.for_all Option.is_some subs then
            Some (And (List.map Option.get subs))
          else None
      end)
    | components ->
      let subs = List.map factor components in
      if List.for_all Option.is_some subs then Some (Or (List.map Option.get subs))
      else None)

(* Flatten nested And/Or for readability. *)
let rec simplify = function
  | Tuple t -> Tuple t
  | And es -> (
    let es =
      List.concat_map
        (fun e -> match simplify e with And inner -> inner | other -> [ other ])
        es
    in
    match es with [ single ] -> single | es -> And es)
  | Or es -> (
    let es =
      List.concat_map
        (fun e -> match simplify e with Or inner -> inner | other -> [ other ])
        es
    in
    match es with [ single ] -> single | es -> Or es)

let factorize clauses = Option.map simplify (factor clauses)

let read_once q db = factorize (why q db)

let rec eval e assignment =
  match e with
  | Tuple t -> assignment t
  | And es -> List.for_all (fun e -> eval e assignment) es
  | Or es -> List.exists (fun e -> eval e assignment) es

let eval_dnf clauses assignment =
  List.exists (fun c -> List.for_all assignment c) clauses

let rec tuples_of_acc e acc =
  match e with
  | Tuple t -> t :: acc
  | And es | Or es -> List.fold_left (fun acc e -> tuples_of_acc e acc) acc es

let tuples_of e = List.sort_uniq compare (tuples_of_acc e [])

let pp ?db fmt e =
  let name t =
    match db with
    | Some db -> Database_io.print_tuple db t
    | None -> Printf.sprintf "t%d" t
  in
  let rec go fmt = function
    | Tuple t -> Format.pp_print_string fmt (name t)
    | And es ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " * ") go)
        es
    | Or es ->
      Format.fprintf fmt "(%a)"
        (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " + ") go)
        es
  in
  go fmt e
