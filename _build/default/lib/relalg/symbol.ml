type t = { by_name : (string, int) Hashtbl.t; mutable by_id : string array; mutable next : int }

let create () = { by_name = Hashtbl.create 64; by_id = Array.make 64 ""; next = 0 }

let intern t name =
  match Hashtbl.find_opt t.by_name name with
  | Some id -> id
  | None ->
    let id = t.next in
    if id >= Array.length t.by_id then begin
      let fresh = Array.make (2 * Array.length t.by_id) "" in
      Array.blit t.by_id 0 fresh 0 id;
      t.by_id <- fresh
    end;
    t.by_id.(id) <- name;
    Hashtbl.add t.by_name name id;
    t.next <- id + 1;
    id

let name t id = if id >= 0 && id < t.next && t.by_id.(id) <> "" then t.by_id.(id) else string_of_int id
let mem t n = Hashtbl.mem t.by_name n
let size t = t.next
