lib/relalg/symbol.ml: Array Hashtbl
