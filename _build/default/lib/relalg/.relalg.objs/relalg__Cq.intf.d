lib/relalg/cq.mli: Format Symbol
