lib/relalg/cq.ml: Array Format Hashtbl List Printf Queue Symbol
