lib/relalg/cq_parser.mli: Cq Database Symbol
