lib/relalg/database_io.mli: Database
