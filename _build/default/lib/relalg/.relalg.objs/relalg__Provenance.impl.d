lib/relalg/provenance.ml: Array Database Database_io Eval Format List Option Printf
