lib/relalg/symbol.mli:
