lib/relalg/cq_parser.ml: Cq Database List Printf String Symbol
