lib/relalg/homomorphism.mli: Cq Database
