lib/relalg/homomorphism.ml: Array Cq Database Hashtbl List
