lib/relalg/database.ml: Array Format Hashtbl List Printf String Symbol
