lib/relalg/eval.ml: Array Cq Database Hashtbl List
