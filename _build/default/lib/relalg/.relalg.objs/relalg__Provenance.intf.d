lib/relalg/provenance.mli: Cq Database Format
