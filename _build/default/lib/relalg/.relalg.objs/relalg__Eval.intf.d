lib/relalg/eval.mli: Cq Database
