lib/relalg/database.mli: Format Symbol
