lib/relalg/database_io.ml: Array Cq Cq_parser Database In_channel List Printf String Symbol
