(* Recursive-descent parser for the tiny CQ syntax documented in the mli. *)

type state = { input : string; mutable pos : int; syms : Symbol.t }

let error st msg =
  invalid_arg (Printf.sprintf "Cq_parser: %s at position %d in %S" msg st.pos st.input)

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.input
    && (match st.input.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  skip_ws st;
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | _ -> error st (Printf.sprintf "expected '%c'" c)

let is_ident_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | _ -> false

let ident st =
  skip_ws st;
  let start = st.pos in
  while st.pos < String.length st.input && is_ident_char st.input.[st.pos] do
    st.pos <- st.pos + 1
  done;
  if st.pos = start then error st "expected an identifier";
  String.sub st.input start (st.pos - start)

let term st =
  skip_ws st;
  match peek st with
  | Some '\'' ->
    st.pos <- st.pos + 1;
    let start = st.pos in
    while st.pos < String.length st.input && st.input.[st.pos] <> '\'' do
      st.pos <- st.pos + 1
    done;
    if st.pos >= String.length st.input then error st "unterminated string constant";
    let s = String.sub st.input start (st.pos - start) in
    st.pos <- st.pos + 1;
    Cq.Const (Symbol.intern st.syms s)
  | Some ('0' .. '9' | '-') ->
    let start = st.pos in
    if st.input.[st.pos] = '-' then st.pos <- st.pos + 1;
    while st.pos < String.length st.input && st.input.[st.pos] >= '0' && st.input.[st.pos] <= '9' do
      st.pos <- st.pos + 1
    done;
    let s = String.sub st.input start (st.pos - start) in
    (try Cq.Const (int_of_string s) with Failure _ -> error st "bad integer constant")
  | Some ('a' .. 'z') -> Cq.Var (ident st)
  | Some ('A' .. 'Z') -> error st "terms must be lowercase variables or constants"
  | _ -> error st "expected a term"

let atom st =
  skip_ws st;
  (match peek st with
  | Some ('A' .. 'Z') -> ()
  | _ -> error st "expected a relation name (uppercase initial)");
  let rel = ident st in
  let exo =
    skip_ws st;
    match peek st with
    | Some '!' ->
      st.pos <- st.pos + 1;
      true
    | _ -> false
  in
  expect st '(';
  let rec terms acc =
    let t = term st in
    skip_ws st;
    match peek st with
    | Some ',' ->
      st.pos <- st.pos + 1;
      terms (t :: acc)
    | Some ')' ->
      st.pos <- st.pos + 1;
      List.rev (t :: acc)
    | _ -> error st "expected ',' or ')'"
  in
  Cq.atom ~exo rel (terms [])

let parse ?symbols s =
  let syms = match symbols with Some t -> t | None -> Symbol.create () in
  let st = { input = s; pos = 0; syms } in
  skip_ws st;
  (* Optional "Name :-" head. *)
  let name =
    let save = st.pos in
    match peek st with
    | Some ('A' .. 'Z') -> (
      let id = ident st in
      skip_ws st;
      if st.pos + 1 < String.length s && s.[st.pos] = ':' && s.[st.pos + 1] = '-' then begin
        st.pos <- st.pos + 2;
        Some id
      end
      else begin
        st.pos <- save;
        None
      end)
    | _ -> None
  in
  let rec atoms acc =
    let a = atom st in
    skip_ws st;
    match peek st with
    | Some ',' ->
      st.pos <- st.pos + 1;
      atoms (a :: acc)
    | Some _ -> error st "trailing input after atom"
    | None -> List.rev (a :: acc)
  in
  let atom_list = atoms [] in
  match name with Some n -> Cq.make ~name:n atom_list | None -> Cq.make atom_list

let parse_with db s = parse ~symbols:(Database.symbols db) s
