(** Homomorphisms between conjunctive queries, query minimization, and
    canonical databases (Chandra–Merlin machinery).

    The paper assumes minimal queries throughout (Section 3.1) and builds
    Join Paths out of canonical databases (Section 7.1); this module supplies
    both operations. *)

val exists : Cq.t -> Cq.t -> bool
(** [exists src dst]: is there a homomorphism from [src] to [dst], i.e. a
    mapping of [src]'s variables to [dst]'s terms such that every atom of
    [src] maps onto an atom of [dst] (same relation symbol)?  Constants map
    to themselves. *)

val minimize : Cq.t -> Cq.t
(** The core of the query: a minimal equivalent sub-query obtained by
    repeatedly dropping atoms that are retractable. *)

val is_minimal : Cq.t -> bool

val canonical_db : ?first_const:int -> Cq.t -> Database.t * (string * int) list
(** The canonical database: one tuple per atom, each variable replaced by a
    distinct fresh constant (starting at [first_const], default 1).
    Constants of the query map to themselves.  Also returns the
    variable-to-constant assignment.  Exogenous atoms yield exogenous
    tuples. *)
