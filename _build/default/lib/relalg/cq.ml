type term = Var of string | Const of int

type atom = { rel : string; terms : term array; exo : bool }

type t = { name : string; atoms : atom array }

let atom ?(exo = false) rel terms = { rel; terms = Array.of_list terms; exo }

let make ?(name = "Q") atoms =
  if atoms = [] then invalid_arg "Cq.make: empty query";
  let arities = Hashtbl.create 8 in
  List.iter
    (fun a ->
      let ar = Array.length a.terms in
      match Hashtbl.find_opt arities a.rel with
      | Some ar' when ar' <> ar ->
        invalid_arg (Printf.sprintf "Cq.make: relation %s used with arities %d and %d" a.rel ar' ar)
      | _ -> Hashtbl.replace arities a.rel ar)
    atoms;
  { name; atoms = Array.of_list atoms }

let dedup_keep_order xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let vars_of_atom a =
  Array.to_list a.terms
  |> List.filter_map (function Var v -> Some v | Const _ -> None)
  |> dedup_keep_order

let vars q = Array.to_list q.atoms |> List.concat_map vars_of_atom |> dedup_keep_order

let arity q rel =
  let found = Array.to_list q.atoms |> List.find_opt (fun a -> a.rel = rel) in
  match found with Some a -> Array.length a.terms | None -> raise Not_found

let rel_names q = Array.to_list q.atoms |> List.map (fun a -> a.rel) |> dedup_keep_order

let self_join_free q = List.length (rel_names q) = Array.length q.atoms

let endogenous_atoms q =
  Array.to_list q.atoms
  |> List.mapi (fun i a -> (i, a))
  |> List.filter_map (fun (i, a) -> if a.exo then None else Some i)

let atoms_sharing q v =
  Array.to_list q.atoms
  |> List.mapi (fun i a -> (i, a))
  |> List.filter_map (fun (i, a) -> if List.mem v (vars_of_atom a) then Some i else None)

(* BFS between atoms where an edge requires a shared variable outside
   [avoid]. *)
let atoms_connected_avoiding q i j ~avoid =
  let n = Array.length q.atoms in
  let allowed_vars a = List.filter (fun v -> not (List.mem v avoid)) (vars_of_atom q.atoms.(a)) in
  let adj a b = List.exists (fun v -> List.mem v (allowed_vars b)) (allowed_vars a) in
  if i = j then true
  else begin
    let visited = Array.make n false in
    let queue = Queue.create () in
    Queue.push i queue;
    visited.(i) <- true;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let a = Queue.pop queue in
      for b = 0 to n - 1 do
        if (not visited.(b)) && adj a b then begin
          if b = j then found := true;
          visited.(b) <- true;
          Queue.push b queue
        end
      done
    done;
    !found
  end

let connected q =
  let n = Array.length q.atoms in
  if n <= 1 then true
  else
    let rec all i = i >= n || (atoms_connected_avoiding q 0 i ~avoid:[] && all (i + 1)) in
    all 1

let components q =
  let n = Array.length q.atoms in
  let shares a b =
    List.exists (fun v -> List.mem v (vars_of_atom q.atoms.(b))) (vars_of_atom q.atoms.(a))
  in
  let comp = Array.make n (-1) in
  let next = ref 0 in
  for i = 0 to n - 1 do
    if comp.(i) < 0 then begin
      let c = !next in
      incr next;
      comp.(i) <- c;
      let changed = ref true in
      while !changed do
        changed := false;
        for a = 0 to n - 1 do
          if comp.(a) = c then
            for b = 0 to n - 1 do
              if comp.(b) < 0 && shares a b then begin
                comp.(b) <- c;
                changed := true
              end
            done
        done
      done
    end
  done;
  List.init !next (fun c ->
      let atoms =
        Array.to_list q.atoms
        |> List.mapi (fun i a -> (i, a))
        |> List.filter_map (fun (i, a) -> if comp.(i) = c then Some a else None)
      in
      { name = Printf.sprintf "%s_c%d" q.name c; atoms = Array.of_list atoms })

(* Variable-level BFS: from [v], step to any co-occurring variable that is
   not blocked; the target atom counts as reached when we stand on one of
   its variables. *)
let var_reaches_atom_avoiding q v target ~blocked =
  let target_vars = vars_of_atom q.atoms.(target) in
  if List.mem v target_vars then true
  else begin
    let visited = Hashtbl.create 8 in
    Hashtbl.add visited v ();
    let queue = Queue.create () in
    Queue.push v queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let x = Queue.pop queue in
      Array.iter
        (fun a ->
          let avs = vars_of_atom a in
          if List.mem x avs then
            List.iter
              (fun y ->
                if (not (Hashtbl.mem visited y)) && not (List.mem y blocked) then begin
                  Hashtbl.add visited y ();
                  if List.mem y target_vars then found := true;
                  Queue.push y queue
                end)
              avs)
        q.atoms
    done;
    !found
  end

let rename_rel q old_name new_name =
  {
    q with
    atoms = Array.map (fun a -> if a.rel = old_name then { a with rel = new_name } else a) q.atoms;
  }

let set_exo q i exo =
  let atoms = Array.copy q.atoms in
  atoms.(i) <- { atoms.(i) with exo };
  { q with atoms }

let equal a b =
  a.atoms = b.atoms

let pp_term name fmt = function
  | Var v -> Format.pp_print_string fmt v
  | Const c -> Format.fprintf fmt "'%s'" (name c)

let pp_atom name fmt a =
  Format.fprintf fmt "%s%s(%a)" a.rel
    (if a.exo then "!" else "")
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ",") (pp_term name))
    (Array.to_list a.terms)

let pp_with name fmt q =
  Format.fprintf fmt "%s :- %a" q.name
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ") (pp_atom name))
    (Array.to_list q.atoms)

let pp fmt q = pp_with string_of_int fmt q

let pp_named syms fmt q = pp_with (Symbol.name syms) fmt q

let to_string q = Format.asprintf "%a" pp q

let to_string_named syms q = Format.asprintf "%a" (pp_named syms) q
