(** Why-provenance of Boolean conjunctive queries, and read-once
    factorization.

    The provenance of [Q] over [D] is the positive Boolean expression (in
    DNF: one conjunct per witness) over tuple variables that is true exactly
    when the query is.  An instance is {e read-once} for [Q] when this
    expression factorizes so that every tuple appears once — the
    instance-tractability condition of the paper's Appendix J (Theorem J.1:
    read-once instances have integral LP relaxations).

    {!factorize} implements a complete read-once factorization for
    irredundant DNFs by recursive decomposition: variable-disjoint clause
    groups become [Or] nodes, variables common to every clause factor out
    into [And] nodes, and clause sets that are exact cross products of
    projections split into independent [And] factors. *)

type expr =
  | Tuple of Database.tuple_id
  | And of expr list
  | Or of expr list

val why : Cq.t -> Database.t -> Database.tuple_id list list
(** The witness DNF: one clause (set of tuple ids) per distinct witness
    tuple set, subsumed clauses removed (irredundant form). *)

val factorize : Database.tuple_id list list -> expr option
(** Read-once factorization of an irredundant DNF; [None] when the
    expression is not read-once. *)

val read_once : Cq.t -> Database.t -> expr option
(** [factorize (why q db)]. *)

val eval : expr -> (Database.tuple_id -> bool) -> bool

val eval_dnf : Database.tuple_id list list -> (Database.tuple_id -> bool) -> bool

val tuples_of : expr -> Database.tuple_id list
(** Distinct tuples, sorted; in a factorization each appears exactly once. *)

val pp : ?db:Database.t -> Format.formatter -> expr -> unit
(** Render with tuple names when a database is supplied. *)
