(** A small text format for database instances, used by the CLI and the
    examples.

    One tuple per line:
    {v
      R(1, 2)            # a tuple of relation R
      S('alice', 7) x3   # three copies (bag semantics)
      A(1) !             # exogenous tuple
      # comments and blank lines are ignored
    v}
    Constants are integers or single-quoted strings (interned through the
    database's symbol table). *)

val parse_line : Database.t -> string -> Database.tuple_id option
(** Adds one line's tuple; [None] for blank/comment lines.
    @raise Invalid_argument on malformed input. *)

val parse_string : ?db:Database.t -> string -> Database.t

val load : ?db:Database.t -> string -> Database.t
(** Reads a file. @raise Sys_error / Invalid_argument. *)

val print_tuple : Database.t -> Database.tuple_id -> string
(** One tuple in the same format (names resolved through the symbol
    table). *)
