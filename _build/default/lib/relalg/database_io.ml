let strip s = String.trim s

(* R('a', 2) x3 !  — reuse the query-term lexer by parsing the tuple as a
   one-atom query with constant arguments only. *)
let parse_line db line =
  let line = match String.index_opt line '#' with Some i -> String.sub line 0 i | None -> line in
  let line = strip line in
  if line = "" then None
  else begin
    (* Split off trailing '!' and 'xN' markers. *)
    let exo = ref false in
    let mult = ref 1 in
    let body = ref line in
    let continue = ref true in
    while !continue do
      let b = strip !body in
      let n = String.length b in
      if n > 0 && b.[n - 1] = '!' then begin
        exo := true;
        body := String.sub b 0 (n - 1)
      end
      else begin
        match String.rindex_opt b 'x' with
        | Some i
          when i > 0
               && b.[i - 1] = ' '
               && i + 1 < n
               && String.for_all (fun c -> c >= '0' && c <= '9') (String.sub b (i + 1) (n - i - 1))
          ->
          mult := int_of_string (String.sub b (i + 1) (n - i - 1));
          body := String.sub b 0 i
        | _ -> continue := false
      end
    done;
    let q = Cq_parser.parse ~symbols:(Database.symbols db) (strip !body) in
    if Array.length q.Cq.atoms <> 1 then invalid_arg "Database_io: one tuple per line";
    let atom = q.Cq.atoms.(0) in
    let args =
      Array.map
        (function
          | Cq.Const c -> c
          | Cq.Var v -> invalid_arg (Printf.sprintf "Database_io: variable %S in data" v))
        atom.Cq.terms
    in
    Some (Database.add ~mult:!mult ~exo:!exo db atom.Cq.rel args)
  end

let parse_string ?db s =
  let db = match db with Some d -> d | None -> Database.create () in
  String.split_on_char '\n' s |> List.iter (fun line -> ignore (parse_line db line));
  db

let load ?db path =
  let ic = open_in path in
  let contents = In_channel.input_all ic in
  close_in ic;
  parse_string ?db contents

let print_tuple db tid =
  let info = Database.tuple db tid in
  let syms = Database.symbols db in
  let name c =
    let s = Symbol.name syms c in
    if String.length s > 0 && String.for_all (fun ch -> ch >= '0' && ch <= '9') s then s
    else "'" ^ s ^ "'"
  in
  Printf.sprintf "%s(%s)%s%s" info.Database.rel
    (String.concat ", " (Array.to_list info.Database.args |> List.map name))
    (if info.Database.mult > 1 then Printf.sprintf " x%d" info.Database.mult else "")
    (if info.Database.exo then " !" else "")
