(** A small concrete syntax for Boolean conjunctive queries.

    Grammar (whitespace-insensitive):
    {v
      query  ::=  [name  ':-']  atom (',' atom)*
      atom   ::=  relname ['!'] '(' term (',' term)* ')'
      term   ::=  variable | constant
    v}

    - [relname] starts with an uppercase letter ([R], [AccessLog], ...);
    - a trailing ['!'] marks the atom exogenous;
    - a [variable] starts with a lowercase letter ([x], [movie], ...);
    - a [constant] is either an integer literal ([17]) or a single-quoted
      string (['S']), interned through the given symbol table.

    Examples: ["R(x,y), S(y,z)"], ["Q :- A!(x), R(x,y), R(y,y)"],
    ["Users(x,n), AccessLog(x,y,'S'), Requests(y,d)"]. *)

val parse : ?symbols:Symbol.t -> string -> Cq.t
(** @raise Invalid_argument with a position-annotated message on bad
    syntax.  String constants require [symbols] (a fresh table is created
    otherwise, which is only useful if the data uses the same table). *)

val parse_with : Database.t -> string -> Cq.t
(** Parses against a database's symbol table, so string constants in the
    query line up with {!Database.add_named} data. *)
