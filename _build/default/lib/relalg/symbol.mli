(** String interning: a bijection between external constant names and the
    dense integer constants used everywhere else in the engine.

    A database's constants are plain [int]s; a symbol table is an optional
    naming layer on top (used by the parser, the example datasets and pretty
    printers).  Mixing raw integer constants and interned constants in one
    database is allowed but then names are only available for the interned
    ones. *)

type t

val create : unit -> t

val intern : t -> string -> int
(** Returns the existing id for the name, or assigns the next free one. *)

val name : t -> int -> string
(** The name of an id; falls back to the decimal form of the id itself for
    constants that were never interned. *)

val mem : t -> string -> bool
val size : t -> int
