open! Relalg

(** Composing IJP certificates into hard database instances — the reduction
    behind Theorem 7.4 (minimum vertex cover), usable as an adversarial data
    generator.

    Each graph node becomes an endpoint-shaped tuple set; each edge becomes a
    fresh copy of the certificate glued to its two nodes.  The resulting
    instance has RES* = VC(G) + |E|·(c−1), and for graphs with odd cycles
    the LP relaxation is fractional — the generator used by Setting 5
    (Fig. 14) to exhibit LP < ILP on a random-data-friendly query. *)

val vertex_cover_instance : Join_path.t -> edges:(int * int) list -> Database.t
(** Nodes are the integers mentioned in [edges] (arbitrary labels). *)

val expected_resilience : Join_path.t -> edges:(int * int) list -> vertex_cover:int -> int
(** [vertex_cover + |edges| * (c - 1)] with [c] the certificate's
    resilience under set semantics. *)

val odd_cycle : int -> (int * int) list
(** Edge list of a cycle on [2k+1] nodes — minimal LP-fractional graph
    (vertex cover (k+1), LP bound (2k+1)/2). *)
