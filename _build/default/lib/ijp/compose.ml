open Relalg

let vertex_cover_instance (jp : Join_path.t) ~edges =
  let f =
    match Join_path.endpoint_isomorphism jp with
    | Some f -> f
    | None -> invalid_arg "Compose.vertex_cover_instance: not a valid join path"
  in
  let s_consts = List.map fst f in
  let nodes = List.sort_uniq compare (List.concat_map (fun (u, v) -> [ u; v ]) edges) in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    !counter
  in
  (* Every node gets a start-shaped constant block. *)
  let node_consts =
    List.map (fun v -> (v, List.map (fun c -> (c, fresh ())) s_consts)) nodes
  in
  let db = Database.create () in
  List.iter
    (fun (u, v) ->
      let smap = List.assoc u node_consts in
      (* The terminal endpoint glues onto node v through the endpoint
         isomorphism: terminal constant f(c) lands where node v put c. *)
      let tmap = List.map (fun (c, fc) -> (fc, List.assoc c (List.assoc v node_consts))) f in
      Join_path.instantiate jp ~smap ~tmap ~fresh db)
    edges;
  db

let expected_resilience (jp : Join_path.t) ~edges ~vertex_cover =
  match Join_path.resilience Resilience.Problem.Set jp with
  | Some c -> vertex_cover + (List.length edges * (c - 1))
  | None -> invalid_arg "Compose.expected_resilience: certificate has no finite resilience"

let odd_cycle k =
  let n = (2 * k) + 1 in
  List.init n (fun i -> (i, (i + 1) mod n))
