lib/ijp/search.mli: Cq Join_path Relalg
