lib/ijp/compose.mli: Database Join_path Relalg
