lib/ijp/join_path.mli: Cq Database Format Relalg Resilience Result
