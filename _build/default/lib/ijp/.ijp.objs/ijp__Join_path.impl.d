lib/ijp/join_path.ml: Array Cq Database Eval Format Hashtbl List Option Printf Relalg Resilience Result String
