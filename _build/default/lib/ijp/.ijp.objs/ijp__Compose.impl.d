lib/ijp/compose.ml: Database Join_path List Relalg Resilience
