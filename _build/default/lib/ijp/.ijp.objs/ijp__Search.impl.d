lib/ijp/search.ml: Array Cq Database Hashtbl Join_path List Option Relalg Resilience Sys
