open! Relalg

(** Automatic construction of IJP hardness certificates — our stand-in for
    the paper's DLP[RESIJP] + clingo pipeline (Section 7.2).

    The search enumerates candidate certificates by iterative deepening on
    the number of {e generator witnesses} k: a candidate is a set of k
    valuations of the query variables over the bounded domain, with the
    start endpoint pinned into the first valuation and the terminal endpoint
    into another.  The induced database (the union of the valuations'
    tuples, closed under query evaluation) is then checked semantically with
    {!Join_path.check_ijp}.  Like the DLP, the procedure is one-sided: a
    returned certificate proves NP-completeness (Corollary 7.8); exhausting
    the space proves nothing. *)

type config = {
  domain : int;  (** Constants range over 1..domain. *)
  max_generators : int;  (** Deepening limit on k (the paper's certificates
                             all need 3–5). *)
  exo_rels : string list;
      (** Relations whose tuples are exogenous in candidates (e.g. [["A"]]
          when reproducing Theorem 8.8-style gadgets). *)
  work_limit : int;  (** Candidate budget; the search stops when spent. *)
  time_limit : float;  (** Wall-clock budget in seconds. *)
}

val default_config : config
(** domain 5, up to 4 generators, no exogenous relations, 2M candidates,
    120 s. *)

type stats = { candidates : int; checked : int; elapsed : float }

type endpoint = (string * int array) list
(** An endpoint is a {e set} of tuples (relation name and constants) — the
    paper's gadgets need multi-tuple endpoints for queries like q^b_chain,
    where a unary tuple necessarily accompanies the binary one. *)

val endpoint_candidates : Cq.t -> (endpoint * endpoint) list
(** Candidate endpoint pairs: subsets (size 1 or 2) of a canonical witness's
    endogenous tuples, renamed to constants 1..k (start) and k+1..2k
    (terminal) — isomorphic, non-identical and constant-disjoint by
    construction (footnote 11 of the paper). *)

val find : ?config:config -> Cq.t -> (Join_path.t * stats) option
(** Search for an IJP certificate for the query under set semantics, trying
    every candidate endpoint pair within the overall time budget.  Returns
    the first certificate found. *)

val find_with_endpoints :
  ?config:config -> Cq.t -> s:endpoint -> t:endpoint -> (Join_path.t * stats) option
(** Search with explicit endpoint tuple sets. *)
