open Relalg

type t = {
  q : Cq.t;
  db : Database.t;
  start : Database.tuple_id list;
  terminal : Database.tuple_id list;
}

type check_error = string

let consts_of db tids =
  List.concat_map (fun tid -> Array.to_list (Database.tuple db tid).Database.args) tids
  |> List.sort_uniq compare

let reduced q db =
  let used = Hashtbl.create 64 in
  List.iter
    (fun w -> List.iter (fun tid -> Hashtbl.replace used tid ()) (Eval.tuple_set w))
    (Eval.witnesses q db);
  List.for_all (fun info -> Hashtbl.mem used info.Database.id) (Database.tuples db)

let witnesses_connected q db =
  let sets = List.map Eval.tuple_set (Eval.witnesses q db) in
  match sets with
  | [] -> false
  | first :: _ ->
    let reach = Hashtbl.create 64 in
    List.iter (fun tid -> Hashtbl.replace reach tid ()) first;
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun ts ->
          if List.exists (Hashtbl.mem reach) ts then
            List.iter
              (fun tid ->
                if not (Hashtbl.mem reach tid) then begin
                  Hashtbl.replace reach tid ();
                  changed := true
                end)
              ts)
        sets
    done;
    List.for_all (fun ts -> List.for_all (Hashtbl.mem reach) ts) sets

(* Bijection between endpoint constants mapping start tuples onto terminal
   tuples relation-wise: backtracking over tuple pairings carrying a
   two-sided constant mapping. *)
let endpoint_isomorphism jp =
  let s_ids = List.sort_uniq compare jp.start and t_ids = List.sort_uniq compare jp.terminal in
  if s_ids = t_ids || List.length s_ids <> List.length t_ids then None
  else begin
    let fwd = Hashtbl.create 8 and bwd = Hashtbl.create 8 in
    let map_tuple a b =
      let ia = Database.tuple jp.db a and ib = Database.tuple jp.db b in
      if ia.Database.rel <> ib.Database.rel then None
      else begin
        let added = ref [] in
        let ok = ref true in
        Array.iteri
          (fun i ca ->
            if !ok then begin
              let cb = ib.Database.args.(i) in
              match (Hashtbl.find_opt fwd ca, Hashtbl.find_opt bwd cb) with
              | Some cb', Some ca' -> if cb' <> cb || ca' <> ca then ok := false
              | None, None ->
                Hashtbl.add fwd ca cb;
                Hashtbl.add bwd cb ca;
                added := (ca, cb) :: !added
              | _ -> ok := false
            end)
          ia.Database.args;
        if !ok then Some !added
        else begin
          List.iter
            (fun (ca, cb) ->
              Hashtbl.remove fwd ca;
              Hashtbl.remove bwd cb)
            !added;
          None
        end
      end
    in
    let undo added =
      List.iter
        (fun (ca, cb) ->
          Hashtbl.remove fwd ca;
          Hashtbl.remove bwd cb)
        added
    in
    let rec go s_list t_avail =
      match s_list with
      | [] -> true
      | a :: rest ->
        let rec pick before = function
          | [] -> false
          | b :: after -> (
            match map_tuple a b with
            | Some added ->
              if go rest (List.rev_append before after) then true
              else begin
                undo added;
                pick (b :: before) after
              end
            | None -> pick (b :: before) after)
        in
        pick [] t_avail
    in
    if go s_ids t_ids then Some (Hashtbl.fold (fun k v acc -> (k, v) :: acc) fwd [])
    else None
  end

(* Condition (3ii).  Composition glues two join paths at one endpoint with
   all other constants fresh, so the tuples that would clash are exactly the
   endogenous ones lying wholly inside a single endpoint's constants.  (The
   paper's Definition 7.1 reads "subset of the constants of tuples in S ∪ T",
   but its own Example 5 — where R(4,2) spans both endpoints and is fine —
   shows the per-endpoint reading is the intended one.) *)
let no_crowding jp =
  let endpoint_ids = List.sort_uniq compare (jp.start @ jp.terminal) in
  let s_consts = consts_of jp.db jp.start and t_consts = consts_of jp.db jp.terminal in
  let inside consts info = Array.for_all (fun c -> List.mem c consts) info.Database.args in
  List.for_all
    (fun info ->
      List.mem info.Database.id endpoint_ids
      || Resilience.Problem.tuple_exo jp.q jp.db info.Database.id
      || not (inside s_consts info || inside t_consts info))
    (Database.tuples jp.db)

let check jp =
  let ( let* ) r f = Result.bind r f in
  let ensure cond msg = if cond then Ok () else Error msg in
  let* () = ensure (jp.start <> [] && jp.terminal <> []) "empty endpoint" in
  let* () =
    ensure
      (List.for_all (Database.mem jp.db) (jp.start @ jp.terminal))
      "endpoint tuple missing from the database"
  in
  let s_consts = consts_of jp.db jp.start and t_consts = consts_of jp.db jp.terminal in
  let* () =
    ensure
      (not (List.exists (fun c -> List.mem c t_consts) s_consts))
      "endpoint constant sets are not disjoint"
  in
  let* () = ensure (reduced jp.q jp.db) "condition (1): database is not reduced" in
  let* () =
    ensure (witnesses_connected jp.q jp.db) "condition (2): witness hypergraph disconnected"
  in
  let* () =
    ensure (endpoint_isomorphism jp <> None) "condition (3i): endpoints not isomorphic"
  in
  ensure (no_crowding jp) "condition (3ii): endogenous tuple inside endpoint constants"

let resilience semantics jp =
  Option.map fst (Resilience.Hitting_set.resilience semantics jp.q jp.db)

let without jp tids =
  Database.restrict jp.db (fun info -> not (List.mem info.Database.id tids))

let or_property semantics jp =
  match resilience semantics jp with
  | None -> Error "condition (4): resilience undefined on the full database"
  | Some c ->
    let res_without tids =
      Option.map fst
        (Resilience.Hitting_set.resilience semantics jp.q (without jp tids))
    in
    let expect label tids =
      match res_without tids with
      | Some v when v = c - 1 -> Ok ()
      | Some v -> Error (Printf.sprintf "condition (4): resilience minus %s is %d, want %d" label v (c - 1))
      | None ->
        (* The query may already be false after the removal; that still
           matches c-1 only when c = 1. *)
        if c = 1 then Ok ()
        else Error (Printf.sprintf "condition (4): query false after removing %s" label)
    in
    let ( let* ) r f = Result.bind r f in
    let* () = expect "start" jp.start in
    let* () = expect "terminal" jp.terminal in
    let* () = expect "both endpoints" (jp.start @ jp.terminal) in
    Ok c

(* Add a renamed copy of the certificate database into [into]: endpoint
   constants via the supplied finite maps, all other constants fresh. *)
let instantiate jp ~smap ~tmap ~fresh into =
  let s_consts = consts_of jp.db jp.start and t_consts = consts_of jp.db jp.terminal in
  let internal = Hashtbl.create 8 in
  let map_const c =
    if List.mem c s_consts then List.assoc c smap
    else if List.mem c t_consts then List.assoc c tmap
    else begin
      match Hashtbl.find_opt internal c with
      | Some c' -> c'
      | None ->
        let c' = fresh () in
        Hashtbl.add internal c c';
        c'
    end
  in
  List.iter
    (fun info ->
      ignore
        (Database.add ~mult:info.Database.mult ~exo:info.Database.exo into info.Database.rel
           (Array.map map_const info.Database.args)))
    (Database.tuples jp.db)

let triangle_nonleaking jp =
  match endpoint_isomorphism jp with
  | None -> Error "condition (3i): endpoints not isomorphic"
  | Some f ->
    let s_consts = consts_of jp.db jp.start and t_consts = consts_of jp.db jp.terminal in
    let counter = ref (Database.max_const jp.db) in
    let fresh () =
      incr counter;
      !counter
    in
    (* Third endpoint instance C: fresh constants for the terminal shape. *)
    let g = List.map (fun c -> (c, fresh ())) t_consts in
    let union = Database.create () in
    let id_s = List.map (fun c -> (c, c)) s_consts in
    let id_t = List.map (fun c -> (c, c)) t_consts in
    (* Triangle of Fig. 2: A→B, B→C, A→C with A = 𝒮, B = 𝒯, C fresh. *)
    instantiate jp ~smap:id_s ~tmap:id_t ~fresh union;
    instantiate jp ~smap:f ~tmap:g ~fresh union;
    instantiate jp ~smap:id_s ~tmap:g ~fresh union;
    let base = Eval.count jp.q jp.db in
    let composed = Eval.count jp.q union in
    if composed = 3 * base then Ok ()
    else
      Error
        (Printf.sprintf "condition (5): triangle composition leaks (%d witnesses, want %d)"
           composed (3 * base))

let check_ijp semantics jp =
  let ( let* ) r f = Result.bind r f in
  let* () = check jp in
  let* c = or_property semantics jp in
  let* () = triangle_nonleaking jp in
  Ok c

let pp fmt jp =
  let name tid =
    let info = Database.tuple jp.db tid in
    Printf.sprintf "%s(%s)" info.Database.rel
      (String.concat "," (Array.to_list info.Database.args |> List.map string_of_int))
  in
  Format.fprintf fmt "IJP for %s@.  S = {%s}  T = {%s}@.%a" (Cq.to_string jp.q)
    (String.concat ", " (List.map name jp.start))
    (String.concat ", " (List.map name jp.terminal))
    Database.pp jp.db
