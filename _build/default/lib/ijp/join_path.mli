open! Relalg

(** Join Paths and Independent Join Paths (Definitions 7.1 and 7.3) —
    semantic hardness certificates for resilience.

    A candidate certificate is a database with two designated endpoint tuple
    sets.  {!check} verifies the Join Path conditions; {!check_ijp}
    additionally verifies the OR-property (four exact resilience
    computations) and non-leaking triangle composition (Proposition 7.2
    reduces all compositions to that one check). *)

type t = {
  q : Cq.t;
  db : Database.t;
  start : Database.tuple_id list;  (** 𝒮 *)
  terminal : Database.tuple_id list;  (** 𝒯 *)
}

type check_error = string
(** Human-readable description of the violated condition. *)

val reduced : Cq.t -> Database.t -> bool
(** Condition (1): every tuple participates in some witness. *)

val witnesses_connected : Cq.t -> Database.t -> bool
(** Condition (2): the witness hypergraph (tuples as nodes, witnesses as
    hyperedges) is connected. *)

val endpoint_isomorphism : t -> (int * int) list option
(** Condition (3i): a bijection between the endpoint constants mapping the
    start tuples onto the terminal tuples (relation-wise); [None] if none
    exists or the endpoints are identical. *)

val no_crowding : t -> bool
(** Condition (3ii): no endogenous tuple outside 𝒮 ∪ 𝒯 uses only constants
    of 𝒮 ∪ 𝒯. *)

val check : t -> (unit, check_error) Result.t
(** Conditions (1)–(3) plus endpoint-constant disjointness (assumed by the
    composition machinery, cf. the proof of Proposition 7.2). *)

val resilience : Resilience.Problem.semantics -> t -> int option
(** Exact resilience of the certificate database (they are tiny). *)

val or_property : Resilience.Problem.semantics -> t -> (int, check_error) Result.t
(** Condition (4): returns the resilience [c] of the full database after
    verifying that removing 𝒮, 𝒯, or both drops it to exactly [c-1]. *)

val triangle_nonleaking : t -> (unit, check_error) Result.t
(** Condition (5) via Proposition 7.2: three isomorphic copies composed in a
    triangle yield exactly three times the witnesses. *)

val check_ijp : Resilience.Problem.semantics -> t -> (int, check_error) Result.t
(** All conditions; returns the certificate's resilience [c] on success.
    Per Theorem 7.4, success proves RES(Q) NP-complete under the given
    semantics. *)

val instantiate :
  t ->
  smap:(int * int) list ->
  tmap:(int * int) list ->
  fresh:(unit -> int) ->
  Database.t ->
  unit
(** Add a renamed copy of the certificate database into the target: start /
    terminal endpoint constants through the given finite maps, every other
    constant through [fresh] (one fresh constant per distinct original).
    This is the composition primitive behind condition (5) and the
    vertex-cover reduction ({!Compose}). *)

val pp : Format.formatter -> t -> unit
