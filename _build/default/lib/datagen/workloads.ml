open Relalg

type movie = {
  movie_db : Database.t;
  oscar_triangle : Cq.t;
  plain_triangle : Cq.t;
  mcdormand_oscar : Database.tuple_id;
}

let movies () =
  let db = Database.create () in
  let add rel row = ignore (Database.add_named db rel row) in
  let mcdormand_oscar = Database.add_named db "Oscar" [| "Frances McDormand" |] in
  add "ActsIn" [| "Frances McDormand"; "Blood Simple" |];
  add "ActsIn" [| "Frances McDormand"; "Fargo" |];
  add "ActsIn" [| "Frances McDormand"; "Raising Arizona" |];
  add "ActsIn" [| "Frances McDormand"; "Nomadland" |];
  add "ActsIn" [| "Helena Bonham Carter"; "Alice in Wonderland" |];
  add "ActsIn" [| "Helena Bonham Carter"; "The King's Speech" |];
  add "DirectedBy" [| "Joel Coen"; "Blood Simple" |];
  add "DirectedBy" [| "Joel Coen"; "Fargo" |];
  add "DirectedBy" [| "Joel Coen"; "Raising Arizona" |];
  add "DirectedBy" [| "Tim Burton"; "Alice in Wonderland" |];
  add "Spouse" [| "Frances McDormand"; "Joel Coen" |];
  add "Spouse" [| "Helena Bonham Carter"; "Tim Burton" |];
  let oscar_triangle =
    Cq_parser.parse_with db
      "Qoscar :- Oscar(actor), ActsIn(actor,movie), DirectedBy(dir,movie), Spouse(actor,dir)"
  in
  let plain_triangle =
    Cq_parser.parse_with db
      "Qtri :- ActsIn(actor,movie), DirectedBy(dir,movie), Spouse(actor,dir)"
  in
  { movie_db = db; oscar_triangle; plain_triangle; mcdormand_oscar }

type migration = {
  server_db : Database.t;
  usage_query : Cq.t;
  alice : Database.tuple_id;
  db_requests : Database.tuple_id;
}

let migration () =
  let db = Database.create () in
  let add rel row = ignore (Database.add_named db rel row) in
  let alice = Database.add_named db "Users" [| "1"; "Alice" |] in
  add "Users" [| "2"; "Bob" |];
  add "Users" [| "3"; "Charlie" |];
  add "AccessLog" [| "1"; "IMAP"; "S" |];
  add "AccessLog" [| "2"; "DB"; "S" |];
  add "AccessLog" [| "1"; "SMTP"; "S" |];
  add "AccessLog" [| "1"; "DB"; "S" |];
  add "AccessLog" [| "3"; "IMAP"; "X" |];
  add "AccessLog" [| "3"; "DB"; "S" |];
  add "AccessLog" [| "2"; "SMTP"; "X" |];
  add "AccessLog" [| "1"; "DB"; "T" |];
  add "Requests" [| "IMAP"; "email (in)" |];
  add "Requests" [| "SMTP"; "email (out)" |];
  let db_requests = Database.add_named db "Requests" [| "DB"; "data access" |] in
  let usage_query =
    Cq_parser.parse_with db "Qs :- Users(x,n), AccessLog(x,y,'S'), Requests(y,d)"
  in
  { server_db = db; usage_query; alice; db_requests }
