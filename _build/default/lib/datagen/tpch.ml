open Relalg

(* Key spaces are disjoint so that accidental cross-relation joins cannot
   occur: custkey 1xxxxx, orderkey 2xxxxx, psid 3xxxxx, suppkey 4xxxxx,
   custname 5xxxxx. *)
let custkey i = 100_000 + i
let orderkey i = 200_000 + i
let psid i = 300_000 + i
let suppkey i = 400_000 + i
let custname i = 500_000 + i

let generate rng ~scale =
  let n_cust = max 2 (int_of_float (150.0 *. scale)) in
  let n_orders = max 2 (int_of_float (1500.0 *. scale)) in
  let n_lineitem = max 2 (int_of_float (6000.0 *. scale)) in
  let n_partsupp = max 2 (int_of_float (800.0 *. scale)) in
  let n_supp = max 2 (int_of_float (10.0 *. scale)) in
  let db = Database.create () in
  for i = 1 to n_cust do
    ignore (Database.add db "Customer" [| custname i; custkey i |])
  done;
  for i = 1 to n_orders do
    let c = 1 + Random.State.int rng n_cust in
    ignore (Database.add db "Orders" [| custkey c; orderkey i |])
  done;
  for i = 1 to n_partsupp do
    let s = 1 + Random.State.int rng n_supp in
    ignore (Database.add db "Partsupp" [| psid i; suppkey s |])
  done;
  for _ = 1 to n_lineitem do
    let o = 1 + Random.State.int rng n_orders in
    let p = 1 + Random.State.int rng n_partsupp in
    ignore (Database.add db "Lineitem" [| orderkey o; psid p |])
  done;
  for i = 1 to n_supp do
    let c = 1 + Random.State.int rng n_cust in
    ignore (Database.add db "Supplier" [| suppkey i; custname c |])
  done;
  db

let scale_factors ?(from_sf = 0.01) ?(to_sf = 1.0) n =
  if n <= 1 then [ to_sf ]
  else
    List.init n (fun i ->
        exp (log from_sf +. (float_of_int i /. float_of_int (n - 1) *. (log to_sf -. log from_sf))))

let responsibility_target db =
  match Database.tuples_of db "Lineitem" with
  | info :: _ -> Some info.Database.id
  | [] -> None
