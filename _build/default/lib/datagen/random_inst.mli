open! Relalg

(** Synthetic random instances, following the paper's protocol (Section 10):
    fix a maximum domain size, sample tuples uniformly without replacement,
    and under bag semantics replicate each tuple by a random count below a
    maximum bag size.  Growing instances are {e monotone}: the instance at
    size n is a prefix of the instance at size n' > n, as required for the
    per-plot "30 runs of logarithmically and monotonically increasing
    database instances". *)

type spec = { rel : string; arity : int; count : int }

val specs_of_query : Cq.t -> count:int -> spec list
(** One spec per relation symbol of the query, [count] tuples each. *)

type pool
(** A fixed random tuple order per relation, from which monotone prefixes
    are drawn. *)

val pool : Random.State.t -> domain:int -> ?max_bag:int -> spec list -> pool
(** [spec.count] acts as the maximum size; asking a larger prefix saturates.
    [max_bag > 1] assigns each tuple a random multiplicity in [1..max_bag]. *)

val prefix_db : pool -> frac:float -> Database.t
(** The database containing the first [frac] (in (0,1]) of every relation's
    pool. *)

val db : Random.State.t -> domain:int -> ?max_bag:int -> spec list -> Database.t
(** One-shot instance ([prefix_db ~frac:1.0] of a fresh pool). *)

val log_fractions : int -> float list
(** [n] logarithmically spaced fractions ending at 1.0 (the growth schedule
    of the experiments). *)
