open! Relalg

(** A TPC-H-shaped generator (substitute for the TPC-H dbgen tool, which is
    not available offline — see DESIGN.md).

    The schema is projected to the binary relations used by the paper's
    Setting 2 queries:
    {v
      Customer(custname, custkey)   Orders(custkey, orderkey)
      Lineitem(orderkey, psid)      Partsupp(psid, suppkey)
      Supplier(suppkey, custname)
    v}
    Cardinalities follow TPC-H's ratios (scaled 1:1000): per unit scale
    factor, 150 customers, 1500 orders, 6000 lineitems, 800 partsupp rows,
    10 suppliers.  All joins are primary-key/foreign-key, which is the
    property Setting 2 depends on: the data's functional dependencies make
    even the NP-complete 5-cycle query behave in PTIME.  The cycle closes
    through [custname] (the paper's query text leaves the closing join
    implicit; Table 3 names it the 5-cycle). *)

val generate : Random.State.t -> scale:float -> Database.t

val scale_factors : ?from_sf:float -> ?to_sf:float -> int -> float list
(** [n] logarithmically increasing scale factors, default 0.01 to 1.0 (the
    paper's 18 databases). *)

val responsibility_target : Database.t -> Database.tuple_id option
(** A deterministic interesting responsibility tuple: the first Lineitem
    row (mid-chain, so both flow and MILP paths are exercised). *)
