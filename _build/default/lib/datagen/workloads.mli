open! Relalg

(** The paper's worked real-world datasets (Appendix B): the movie
    exploratory-data-analysis example (Fig. 8) and the server-migration
    example (Fig. 9), with their queries.  Used by the runnable examples and
    the test suite. *)

type movie = {
  movie_db : Database.t;
  oscar_triangle : Cq.t;
      (** Q△A over Oscar/ActsIn/DirectedBy/Spouse (Example 10). *)
  plain_triangle : Cq.t;
      (** The same query without the Oscar atom — NP-complete (Example 10). *)
  mcdormand_oscar : Database.tuple_id;
      (** The tuple whose responsibility Example 11 computes. *)
}

val movies : unit -> movie

type migration = {
  server_db : Database.t;
  usage_query : Cq.t;  (** Q_s of Examples 12/13. *)
  alice : Database.tuple_id;  (** Users(1, Alice). *)
  db_requests : Database.tuple_id;  (** Requests(DB, data access). *)
}

val migration : unit -> migration
