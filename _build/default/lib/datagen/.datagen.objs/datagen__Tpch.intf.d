lib/datagen/tpch.mli: Database Random Relalg
