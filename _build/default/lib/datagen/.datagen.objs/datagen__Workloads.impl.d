lib/datagen/workloads.ml: Cq Cq_parser Database Relalg
