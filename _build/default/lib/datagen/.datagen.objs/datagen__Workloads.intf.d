lib/datagen/workloads.mli: Cq Database Relalg
