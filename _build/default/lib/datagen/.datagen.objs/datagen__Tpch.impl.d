lib/datagen/tpch.ml: Database List Random Relalg
