lib/datagen/random_inst.mli: Cq Database Random Relalg
