lib/datagen/random_inst.ml: Array Cq Database Float Hashtbl List Random Relalg
