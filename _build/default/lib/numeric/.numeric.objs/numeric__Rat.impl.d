lib/numeric/rat.ml: Bigint Format
