lib/numeric/bigint.ml: Array Buffer Format List Printf String
