lib/numeric/field.ml: Array Bigint Float Rat
