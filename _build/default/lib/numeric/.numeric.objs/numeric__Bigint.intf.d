lib/numeric/bigint.mli: Format
