(** Exact rational numbers over {!Bigint}.

    Values are kept in canonical form: the denominator is positive and the
    fraction is fully reduced, so structural comparison through {!compare}
    and {!equal} is exact.  This is the number type of the exact simplex
    instantiation, used to certify LP optima (e.g. LP[RES*] integrality). *)

type t

val zero : t
val one : t
val minus_one : t

val make : Bigint.t -> Bigint.t -> t
(** [make num den] is the reduced fraction num/den.
    @raise Division_by_zero if [den] is zero. *)

val of_int : int -> t
val of_ints : int -> int -> t
(** [of_ints num den]. @raise Division_by_zero if [den = 0]. *)

val of_bigint : Bigint.t -> t

val num : t -> Bigint.t
val den : t -> Bigint.t
(** Always positive. *)

val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on zero. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero if the divisor is zero. *)

val min : t -> t -> t
val max : t -> t -> t

val floor : t -> Bigint.t
(** Largest integer [<=] the value. *)

val ceil : t -> Bigint.t
(** Smallest integer [>=] the value. *)

val to_float : t -> float
val to_string : t -> string
val pp : Format.formatter -> t -> unit
