type t = { num : Bigint.t; den : Bigint.t }
(* Invariants: den > 0; gcd(|num|, den) = 1; zero is 0/1. *)

let make num den =
  if Bigint.is_zero den then raise Division_by_zero
  else if Bigint.is_zero num then { num = Bigint.zero; den = Bigint.one }
  else begin
    let num, den = if Bigint.sign den < 0 then (Bigint.neg num, Bigint.neg den) else (num, den) in
    let g = Bigint.gcd num den in
    if Bigint.equal g Bigint.one then { num; den }
    else { num = Bigint.div num g; den = Bigint.div den g }
  end

let zero = { num = Bigint.zero; den = Bigint.one }
let one = { num = Bigint.one; den = Bigint.one }
let minus_one = { num = Bigint.minus_one; den = Bigint.one }

let of_bigint n = { num = n; den = Bigint.one }
let of_int n = of_bigint (Bigint.of_int n)
let of_ints n d = make (Bigint.of_int n) (Bigint.of_int d)

let num x = x.num
let den x = x.den

let sign x = Bigint.sign x.num
let is_zero x = Bigint.is_zero x.num
let is_integer x = Bigint.equal x.den Bigint.one

let compare x y =
  (* num_x/den_x ? num_y/den_y  <=>  num_x*den_y ? num_y*den_x (dens > 0). *)
  Bigint.compare (Bigint.mul x.num y.den) (Bigint.mul y.num x.den)

let equal x y = Bigint.equal x.num y.num && Bigint.equal x.den y.den

let neg x = { x with num = Bigint.neg x.num }
let abs x = if sign x < 0 then neg x else x

let inv x =
  if is_zero x then raise Division_by_zero
  else if Bigint.sign x.num > 0 then { num = x.den; den = x.num }
  else { num = Bigint.neg x.den; den = Bigint.neg x.num }

let add x y =
  make (Bigint.add (Bigint.mul x.num y.den) (Bigint.mul y.num x.den)) (Bigint.mul x.den y.den)

let sub x y = add x (neg y)
let mul x y = make (Bigint.mul x.num y.num) (Bigint.mul x.den y.den)
let div x y = mul x (inv y)

let min x y = if compare x y <= 0 then x else y
let max x y = if compare x y >= 0 then x else y

let floor x =
  let q, r = Bigint.divmod x.num x.den in
  if Bigint.sign r < 0 then Bigint.sub q Bigint.one else q

let ceil x =
  let q, r = Bigint.divmod x.num x.den in
  if Bigint.sign r > 0 then Bigint.add q Bigint.one else q

let to_float x = Bigint.to_float x.num /. Bigint.to_float x.den

let to_string x =
  if is_integer x then Bigint.to_string x.num
  else Bigint.to_string x.num ^ "/" ^ Bigint.to_string x.den

let pp fmt x = Format.pp_print_string fmt (to_string x)
