(** The ordered-field abstraction the simplex solver is written against.

    Two instances are provided: {!Float_field} (fast, epsilon comparisons)
    and {!Rat_field} (exact rationals, used as a correctness oracle and to
    certify LP-relaxation integrality on small instances). *)

module type S = sig
  type t

  val zero : t
  val one : t
  val of_int : int -> t
  val of_ratio : int -> int -> t

  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val neg : t -> t
  val abs : t -> t

  val sign : t -> int
  (** [-1], [0] or [1], up to the instance's tolerance: the float instance
      treats magnitudes below its epsilon as zero. *)

  val pivot_tol : t
  (** Minimum magnitude the simplex accepts for a pivot element: large
      enough to keep the float basis inverse well-conditioned, exactly zero
      for exact fields (any nonzero rational pivots safely). *)

  val compare : t -> t -> int
  (** Consistent with {!sign} of the difference. *)

  val is_integral : t -> bool
  (** Whether the value is (within tolerance) an integer. *)

  val round : t -> int
  (** Nearest integer; only meaningful on values that fit in [int]. *)

  val to_float : t -> float
  val to_string : t -> string

  (** {2 Bulk kernels}

      The simplex inner loops run through these so that the float instance
      executes raw unboxed-float-array loops ([t array] is a flat float
      array when [t = float]) instead of one closure call per element. *)

  val axpy : t -> t array -> t array -> unit
  (** [axpy a x y] adds [a * x] into [y] elementwise; no-op when [a] = 0. *)

  val div_inplace : t array -> t -> unit
  (** Divide every element by a scalar. *)

  val dot : t array -> t array -> t
end

module Float_field : S with type t = float = struct
  type t = float

  let eps = 1e-7
  let zero = 0.0
  let one = 1.0
  let of_int = float_of_int
  let of_ratio a b = float_of_int a /. float_of_int b
  let add = ( +. )
  let sub = ( -. )
  let mul = ( *. )
  let div = ( /. )
  let neg x = -.x
  let abs = Float.abs
  let sign x = if x > eps then 1 else if x < -.eps then -1 else 0
  let pivot_tol = 1e-6
  let compare x y = sign (x -. y)
  let round x = int_of_float (Float.round x)
  let is_integral x = Float.abs (x -. Float.round x) <= 1e-6
  let to_float x = x
  let to_string = string_of_float

  let axpy a x y =
    if a <> 0.0 then
      for i = 0 to Array.length x - 1 do
        y.(i) <- y.(i) +. (a *. x.(i))
      done

  let div_inplace x a =
    for i = 0 to Array.length x - 1 do
      x.(i) <- x.(i) /. a
    done

  let dot x y =
    let acc = ref 0.0 in
    for i = 0 to Array.length x - 1 do
      acc := !acc +. (x.(i) *. y.(i))
    done;
    !acc
end

module Rat_field : S with type t = Rat.t = struct
  type t = Rat.t

  let zero = Rat.zero
  let one = Rat.one
  let of_int = Rat.of_int
  let of_ratio = Rat.of_ints
  let add = Rat.add
  let sub = Rat.sub
  let mul = Rat.mul
  let div = Rat.div
  let neg = Rat.neg
  let abs = Rat.abs
  let sign = Rat.sign
  let pivot_tol = Rat.zero
  let compare = Rat.compare
  let is_integral = Rat.is_integer

  let round x =
    let fl = Rat.floor x in
    let frac = Rat.sub x (Rat.of_bigint fl) in
    let fl = if Rat.compare frac (Rat.of_ints 1 2) >= 0 then Bigint.add fl Bigint.one else fl in
    match Bigint.to_int_opt fl with
    | Some n -> n
    | None -> invalid_arg "Rat_field.round: out of int range"

  let to_float = Rat.to_float
  let to_string = Rat.to_string

  let axpy a x y =
    if not (Rat.is_zero a) then
      for i = 0 to Array.length x - 1 do
        y.(i) <- Rat.add y.(i) (Rat.mul a x.(i))
      done

  let div_inplace x a =
    for i = 0 to Array.length x - 1 do
      x.(i) <- Rat.div x.(i) a
    done

  let dot x y =
    let acc = ref Rat.zero in
    for i = 0 to Array.length x - 1 do
      acc := Rat.add !acc (Rat.mul x.(i) y.(i))
    done;
    !acc
end
