(** Arbitrary-precision signed integers.

    This module backs the exact-rational instantiation of the simplex solver
    ({!Simplex} in the [lp] library).  The representation is sign-magnitude
    with base-2{^15} digits, which keeps every intermediate product inside
    OCaml's native [int] on 64-bit platforms.

    All values are immutable and in canonical form (no leading zero digits;
    zero has sign [0]).  Structural equality [( = )] is therefore valid, but
    prefer {!equal} and {!compare}. *)

type t

(** {1 Constructors} *)

val zero : t
val one : t
val minus_one : t

val of_int : int -> t
(** Exact conversion; handles [min_int]. *)

val of_string : string -> t
(** Parses an optional sign followed by decimal digits.
    @raise Invalid_argument on malformed input. *)

(** {1 Predicates and comparisons} *)

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

(** {1 Arithmetic} *)

val neg : t -> t
val abs : t -> t
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t

val divmod : t -> t -> t * t
(** [divmod a b] is [(q, r)] with [a = q*b + r], truncated toward zero
    (so [sign r = sign a] or [r = zero]), like OCaml's [/] and [mod].
    @raise Division_by_zero if [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t

val gcd : t -> t -> t
(** Greatest common divisor of the absolute values; [gcd zero zero = zero]. *)

val pow : t -> int -> t
(** [pow x n] for [n >= 0]. @raise Invalid_argument on negative exponent. *)

(** {1 Conversions} *)

val to_int_opt : t -> int option
(** [Some n] iff the value fits in a native [int]. *)

val to_float : t -> float
(** Nearest float (may overflow to infinity). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
