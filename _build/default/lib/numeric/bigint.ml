(* Sign-magnitude bignums over base-2^15 digits (little-endian int arrays).
   Base 2^15 keeps digit products below 2^30, so schoolbook multiplication
   accumulates safely in a native int. *)

let base_bits = 15
let base = 1 lsl base_bits (* 32768 *)
let base_mask = base - 1

type t = { sign : int; mag : int array }
(* Invariants: sign ∈ {-1,0,1}; sign = 0 iff mag = [||];
   mag has no trailing (most-significant) zero digit;
   every digit is in [0, base). *)

let zero = { sign = 0; mag = [||] }

let normalize sign mag =
  let n = ref (Array.length mag) in
  while !n > 0 && mag.(!n - 1) = 0 do
    decr n
  done;
  if !n = 0 then zero
  else if !n = Array.length mag then { sign; mag }
  else { sign; mag = Array.sub mag 0 !n }

let of_int n =
  if n = 0 then zero
  else begin
    (* Work with the negative absolute value: |min_int| overflows, -|x| never.
       Peel least-significant digits: d ∈ [0, base) with (a + d) ≡ 0 mod base. *)
    let sign = if n < 0 then -1 else 1 in
    let a = ref (if n < 0 then n else -n) in
    let buf = ref [] in
    while !a <> 0 do
      let d =
        let m = -(!a mod base) in
        if m < 0 then m + base else m
      in
      buf := d :: !buf;
      a := (!a + d) / base
    done;
    normalize sign (Array.of_list (List.rev !buf))
  end

let sign x = x.sign
let is_zero x = x.sign = 0

let compare_mag a b =
  let la = Array.length a and lb = Array.length b in
  if la <> lb then compare la lb
  else
    let rec go i = if i < 0 then 0 else if a.(i) <> b.(i) then compare a.(i) b.(i) else go (i - 1) in
    go (la - 1)

let compare x y =
  if x.sign <> y.sign then compare x.sign y.sign
  else if x.sign >= 0 then compare_mag x.mag y.mag
  else compare_mag y.mag x.mag

let equal x y = compare x y = 0

let neg x = if x.sign = 0 then x else { x with sign = -x.sign }
let abs x = if x.sign < 0 then neg x else x

(* Magnitude addition: |a| + |b|. *)
let add_mag a b =
  let la = Array.length a and lb = Array.length b in
  let lmax = max la lb in
  let out = Array.make (lmax + 1) 0 in
  let carry = ref 0 in
  for i = 0 to lmax - 1 do
    let da = if i < la then a.(i) else 0 in
    let db = if i < lb then b.(i) else 0 in
    let s = da + db + !carry in
    out.(i) <- s land base_mask;
    carry := s lsr base_bits
  done;
  out.(lmax) <- !carry;
  out

(* Magnitude subtraction: |a| - |b|, requires |a| >= |b|. *)
let sub_mag a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make la 0 in
  let borrow = ref 0 in
  for i = 0 to la - 1 do
    let db = if i < lb then b.(i) else 0 in
    let d = a.(i) - db - !borrow in
    if d < 0 then begin
      out.(i) <- d + base;
      borrow := 1
    end
    else begin
      out.(i) <- d;
      borrow := 0
    end
  done;
  assert (!borrow = 0);
  out

let add x y =
  if x.sign = 0 then y
  else if y.sign = 0 then x
  else if x.sign = y.sign then normalize x.sign (add_mag x.mag y.mag)
  else
    let c = compare_mag x.mag y.mag in
    if c = 0 then zero
    else if c > 0 then normalize x.sign (sub_mag x.mag y.mag)
    else normalize y.sign (sub_mag y.mag x.mag)

let sub x y = add x (neg y)

let mul_mag a b =
  let la = Array.length a and lb = Array.length b in
  let out = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let carry = ref 0 in
    let ai = a.(i) in
    if ai <> 0 then begin
      for j = 0 to lb - 1 do
        let t = out.(i + j) + (ai * b.(j)) + !carry in
        out.(i + j) <- t land base_mask;
        carry := t lsr base_bits
      done;
      let k = ref (i + lb) in
      while !carry <> 0 do
        let t = out.(!k) + !carry in
        out.(!k) <- t land base_mask;
        carry := t lsr base_bits;
        incr k
      done
    end
  done;
  out

let mul x y =
  if x.sign = 0 || y.sign = 0 then zero
  else normalize (x.sign * y.sign) (mul_mag x.mag y.mag)

(* Short division of a magnitude by a small positive int (< 2^30).
   Returns quotient magnitude and integer remainder. *)
let divmod_small_mag a d =
  let la = Array.length a in
  let out = Array.make la 0 in
  let rem = ref 0 in
  for i = la - 1 downto 0 do
    let cur = (!rem lsl base_bits) lor a.(i) in
    out.(i) <- cur / d;
    rem := cur mod d
  done;
  (out, !rem)

(* Compare |a| shifted... helper: does mag [a] (viewed from digit offset
   [off]) dominate [b]?  Used by long division: compares b * q against the
   running remainder window.  We instead implement division by the classic
   shift-and-subtract over digits with a binary search for each quotient
   digit, which only needs mul-by-small and compare/subtract at an offset. *)

(* r := r - (b * q) shifted left by [off] digits; requires the result to be
   non-negative.  [r] is a mutable working array with room to spare. *)
let sub_scaled r b q off =
  if q <> 0 then begin
    let lb = Array.length b in
    let borrow = ref 0 and carry = ref 0 in
    for j = 0 to lb - 1 do
      let prod = (q * b.(j)) + !carry in
      carry := prod lsr base_bits;
      let d = r.(off + j) - (prod land base_mask) - !borrow in
      if d < 0 then begin
        r.(off + j) <- d + base;
        borrow := 1
      end
      else begin
        r.(off + j) <- d;
        borrow := 0
      end
    done;
    let k = ref (off + lb) in
    while !carry <> 0 || !borrow <> 0 do
      let d = r.(!k) - (!carry land base_mask) - !borrow in
      carry := !carry lsr base_bits;
      if d < 0 then begin
        r.(!k) <- d + base;
        borrow := 1
      end
      else begin
        r.(!k) <- d;
        borrow := 0
      end;
      incr k
    done
  end

(* Is b * q (shifted by off) <= the current remainder r?  Computes the
   product digit-by-digit and compares from the most significant end.
   To stay simple we materialize the product. *)
let fits r b q off rlen =
  if q = 0 then true
  else begin
    let lb = Array.length b in
    let prod = Array.make (lb + 2) 0 in
    let carry = ref 0 in
    for j = 0 to lb - 1 do
      let t = (q * b.(j)) + !carry in
      prod.(j) <- t land base_mask;
      carry := t lsr base_bits
    done;
    let j = ref lb in
    while !carry <> 0 do
      prod.(!j) <- !carry land base_mask;
      carry := !carry lsr base_bits;
      incr j
    done;
    let lp = ref (Array.length prod) in
    while !lp > 0 && prod.(!lp - 1) = 0 do
      decr lp
    done;
    (* Compare prod (at digit offset off) with r[0..rlen). *)
    if off + !lp > rlen then
      (* prod has digits above rlen: greater unless they are zero (they are
         not, by construction of lp). *)
      false
    else begin
      (* Check r's digits above off + lp are all zero; otherwise r larger. *)
      let rec high_zero i = if i >= rlen then true else if r.(i) <> 0 then false else high_zero (i + 1) in
      if not (high_zero (off + !lp)) then true
      else
        let rec cmp i =
          if i < 0 then true (* equal *)
          else
            let rp = if i < !lp then prod.(i) else 0 in
            if r.(off + i) <> rp then r.(off + i) > rp
            else cmp (i - 1)
        in
        cmp (!lp - 1)
    end
  end

(* Long division of magnitudes: |a| / |b| with |b| >= base (multi-digit or
   large single digit handled by the small path).  Schoolbook with binary
   search for each quotient digit. *)
let divmod_mag a b =
  let la = Array.length a and lb = Array.length b in
  if compare_mag a b < 0 then (zero.mag, Array.copy a)
  else if lb = 1 then
    let q, r = divmod_small_mag a b.(0) in
    (q, if r = 0 then [||] else [| r |])
  else begin
    let r = Array.make (la + 1) 0 in
    Array.blit a 0 r 0 la;
    let rlen = la + 1 in
    let qlen = la - lb + 1 in
    let q = Array.make qlen 0 in
    for off = qlen - 1 downto 0 do
      (* Binary-search the digit d in [0, base) with b*d*B^off <= r. *)
      let lo = ref 0 and hi = ref (base - 1) in
      while !lo < !hi do
        let mid = (!lo + !hi + 1) / 2 in
        if fits r b mid off rlen then lo := mid else hi := mid - 1
      done;
      q.(off) <- !lo;
      sub_scaled r b !lo off
    done;
    (q, r)
  end

let divmod x y =
  if y.sign = 0 then raise Division_by_zero
  else if x.sign = 0 then (zero, zero)
  else begin
    let qm, rm = divmod_mag x.mag y.mag in
    let q = normalize (x.sign * y.sign) qm in
    let r = normalize x.sign rm in
    (q, r)
  end

let div x y = fst (divmod x y)
let rem x y = snd (divmod x y)

let rec gcd x y =
  let x = abs x and y = abs y in
  if is_zero y then x else gcd y (rem x y)

let one = of_int 1
let minus_one = of_int (-1)

let pow x n =
  if n < 0 then invalid_arg "Bigint.pow: negative exponent";
  let rec go acc b n =
    if n = 0 then acc
    else
      let acc = if n land 1 = 1 then mul acc b else acc in
      go acc (mul b b) (n lsr 1)
  in
  go one x n

let to_int_opt x =
  (* Accumulate in the negative range (it is one wider, covering min_int)
     and bail out on overflow. *)
  let la = Array.length x.mag in
  let rec go i acc =
    if i < 0 then Some acc
    else
      let shifted = acc * base in
      if shifted / base <> acc then None
      else
        let v = shifted - x.mag.(i) in
        if v > shifted then None else go (i - 1) v
  in
  if x.sign = 0 then Some 0
  else
    match go (la - 1) 0 with
    | None -> None
    | Some m ->
      if x.sign < 0 then Some m
      else if m = min_int then None (* +|min_int| does not fit *)
      else Some (-m)

let to_float x =
  let acc = ref 0.0 in
  for i = Array.length x.mag - 1 downto 0 do
    acc := (!acc *. float_of_int base) +. float_of_int x.mag.(i)
  done;
  if x.sign < 0 then -. !acc else !acc

let to_string x =
  if x.sign = 0 then "0"
  else begin
    let buf = Buffer.create 16 in
    let chunks = ref [] in
    let m = ref x.mag in
    while Array.length !m > 0 && not (Array.for_all (fun d -> d = 0) !m) do
      let q, r = divmod_small_mag !m 10000 in
      chunks := r :: !chunks;
      let n = ref (Array.length q) in
      while !n > 0 && q.(!n - 1) = 0 do
        decr n
      done;
      m := Array.sub q 0 !n
    done;
    if x.sign < 0 then Buffer.add_char buf '-';
    (match !chunks with
    | [] -> Buffer.add_char buf '0'
    | first :: rest ->
      Buffer.add_string buf (string_of_int first);
      List.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%04d" c)) rest);
    Buffer.contents buf
  end

let of_string s =
  let n = String.length s in
  if n = 0 then invalid_arg "Bigint.of_string: empty string";
  let sign, start =
    match s.[0] with '-' -> (-1, 1) | '+' -> (1, 1) | _ -> (1, 0)
  in
  if start >= n then invalid_arg "Bigint.of_string: no digits";
  let acc = ref zero in
  let i = ref start in
  while !i < n do
    let stop = min n (!i + 4) in
    let chunk = String.sub s !i (stop - !i) in
    String.iter (fun c -> if c < '0' || c > '9' then invalid_arg "Bigint.of_string: bad digit") chunk;
    let mult = pow (of_int 10) (stop - !i) in
    acc := add (mul !acc mult) (of_int (int_of_string chunk));
    i := stop
  done;
  if sign < 0 then neg !acc else !acc

let pp fmt x = Format.pp_print_string fmt (to_string x)
