(** Two-phase primal simplex over an arbitrary ordered field.

    The same algorithm instantiated at {!Numeric.Field.Float_field} gives the
    production solver, and at {!Numeric.Field.Rat_field} an exact-arithmetic
    oracle used in tests and to certify LP-relaxation integrality claims
    (Theorems 8.6–8.13 of the paper).

    The solver works on a {!Model.t}: minimize [c'x] subject to the model's
    constraints, [x >= 0] and the per-variable upper bounds (handled as
    explicit rows).  Integrality flags are ignored here — this is the
    relaxation; see {!Branch_bound} for ILP/MILP solving. *)

module Make (F : Numeric.Field.S) : sig
  type outcome =
    | Optimal of { objective : F.t; solution : F.t array }
        (** [solution] is indexed by model variable (fixed variables included
            at their fixed value). *)
    | Infeasible
    | Unbounded

  val solve :
    ?fixed:(Model.var * int) list -> ?method_:[ `Auto | `Primal | `Dual ] -> Model.t -> outcome
  (** [solve ~fixed m] solves the LP relaxation of [m] with the variables in
      [fixed] substituted by the given constant values (used by
      branch-and-bound to branch binary variables without growing the LP).
      Fixing a variable outside its bounds yields [Infeasible].

      [method_] selects the algorithm: [`Auto] (default) runs the dual
      simplex whenever the model qualifies (no equality rows, non-negative
      objective — true of all of this paper's programs; covering LPs are
      much less degenerate dually) and the two-phase primal otherwise;
      [`Primal] forces the primal; [`Dual] forces the dual where
      applicable. *)

  val integral_on : F.t array -> Model.var list -> bool
  (** Are all listed coordinates integral (within the field tolerance)? *)
end
