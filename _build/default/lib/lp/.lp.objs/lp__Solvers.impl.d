lib/lp/solvers.ml: Branch_bound Numeric Simplex
