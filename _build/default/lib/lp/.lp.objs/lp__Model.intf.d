lib/lp/model.mli: Format
