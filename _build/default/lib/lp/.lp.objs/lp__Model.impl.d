lib/lp/model.ml: Array Buffer Float Format Hashtbl List Printf String
