lib/lp/simplex.ml: Array Fun List Model Numeric Option Printf Sys
