lib/lp/branch_bound.ml: Array Float List Model Numeric Simplex Sys
