lib/lp/branch_bound.mli: Model Numeric
