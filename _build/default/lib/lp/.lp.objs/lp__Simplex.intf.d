lib/lp/simplex.mli: Model Numeric
