(** LP-based branch-and-bound for ILPs and MILPs with binary integer variables.

    This mirrors the mechanism the paper relies on in commercial solvers
    (Section 3.2): the root LP relaxation is solved first, and when its
    optimum is integral on the integer variables the search stops at the root
    — which is exactly what happens, provably, for all the paper's PTIME
    cases.  On hard instances the search branches, and the explored node
    count is the observable "exponential blow-up" of the experiments.

    Only binary integer variables are supported (all programs in this code
    base are of that shape): branching fixes a variable to 0 or to 1 and the
    child LP shrinks accordingly. *)

module Make (F : Numeric.Field.S) : sig
  type status =
    | Optimal  (** Proved optimal. *)
    | Feasible  (** A limit was hit; [objective] is the incumbent's value. *)
    | Infeasible
    | Unbounded
    | Limit_no_solution  (** A limit was hit before any incumbent was found. *)

  type result = {
    status : status;
    objective : F.t option;
    solution : F.t array option;
    nodes : int;  (** LP relaxations solved. *)
    root_objective : F.t option;  (** Root LP relaxation value. *)
    root_integral : bool;
        (** Whether the root LP optimum was already integral on the integer
            variables — the paper's LP=ILP condition observed in practice. *)
  }

  val solve :
    ?node_limit:int -> ?time_limit:float -> ?fixed:(Model.var * int) list -> Model.t -> result
  (** [time_limit] is in seconds of processor time (emulates the paper's
      ILP(10) cutoff). @raise Invalid_argument if an integer variable lacks
      an upper bound of 1. *)
end
