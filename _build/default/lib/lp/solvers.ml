(** Pre-instantiated solver stacks.

    {!Float_simplex}/{!Float_bb} are the production solvers; the exact
    variants run the identical algorithms over arbitrary-precision rationals
    and serve as correctness oracles in the test suite and for certifying
    LP-integrality claims on small instances. *)

module Float_simplex = Simplex.Make (Numeric.Field.Float_field)
module Exact_simplex = Simplex.Make (Numeric.Field.Rat_field)
module Float_bb = Branch_bound.Make (Numeric.Field.Float_field)
module Exact_bb = Branch_bound.Make (Numeric.Field.Rat_field)
