lib/resilience/problem.mli: Cq Database Format Relalg
