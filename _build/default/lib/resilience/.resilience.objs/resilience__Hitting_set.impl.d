lib/resilience/hitting_set.ml: Database Eval Hashtbl List Problem Relalg
