lib/resilience/queries.ml: Array Cq Cq_parser Relalg
