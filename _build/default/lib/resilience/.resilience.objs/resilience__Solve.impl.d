lib/resilience/solve.ml: Analysis Array Cq Database Encode Eval Float List Lp Netflow Numeric Option Problem Relalg Sys
