lib/resilience/problem.ml: Array Cq Database Format List Netflow Relalg
