lib/resilience/instance.mli: Cq Database Eval Problem Relalg
