lib/resilience/analysis.mli: Cq Problem Relalg
