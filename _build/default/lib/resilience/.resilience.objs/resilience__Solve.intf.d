lib/resilience/solve.mli: Cq Database Encode Problem Relalg
