lib/resilience/encode.ml: Array Database Eval Hashtbl List Lp Printf Problem Relalg
