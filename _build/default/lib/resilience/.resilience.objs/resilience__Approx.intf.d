lib/resilience/approx.mli: Cq Database Problem Relalg
