lib/resilience/bruteforce.ml: Array Database Eval List Problem Relalg
