lib/resilience/deletion_propagation.ml: Array Cq Database Eval Hashtbl List Lp Numeric Printf Problem Relalg Solve String
