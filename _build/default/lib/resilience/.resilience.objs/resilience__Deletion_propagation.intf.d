lib/resilience/deletion_propagation.mli: Cq Database Problem Relalg Solve
