lib/resilience/queries.mli: Cq Relalg
