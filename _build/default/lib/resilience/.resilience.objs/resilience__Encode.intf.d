lib/resilience/encode.mli: Cq Database Eval Hashtbl Lp Problem Relalg
