lib/resilience/instance.ml: Analysis Array Buffer Cq Database Eval Fun Hashtbl List Printf Relalg
