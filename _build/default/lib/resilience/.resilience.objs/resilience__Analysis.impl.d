lib/resilience/analysis.ml: Array Cq Hashtbl List Printf Problem Queries Relalg
