lib/resilience/approx.ml: Array Cq Database Encode Eval List Lp Netflow Problem Relalg
