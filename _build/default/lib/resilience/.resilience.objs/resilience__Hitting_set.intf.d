lib/resilience/hitting_set.mli: Cq Database Problem Relalg
