lib/resilience/bruteforce.mli: Cq Database Problem Relalg
