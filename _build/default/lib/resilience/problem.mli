open! Relalg

(** Problem statements shared across the library: semantics, tuple weights,
    exogeneity. *)

type semantics = Set | Bag

val weight : semantics -> Database.tuple_info -> int
(** Deletion cost of one {e distinct} non-exogenous tuple: 1 under set
    semantics, its multiplicity under bag semantics (Lemma 4.1). *)

val weight_fn : semantics -> Cq.t -> Database.t -> Database.tuple_info -> int
(** Like {!weight} but returning {!Netflow.Maxflow.infinity} on tuples that
    are exogenous per {!tuple_exo} — the capacity function of the flow
    encodings. *)

val tuple_exo : Cq.t -> Database.t -> Database.tuple_id -> bool
(** A tuple is exogenous when flagged so in the database (Definition 3.3's
    tuple-level generalisation) or when every atom of its relation in the
    query is exogenous (the classical relation-level notion). *)

val endogenous_tuples : Cq.t -> Database.t -> Database.tuple_id list
(** Live tuples that may participate in contingency sets. *)

val pp_semantics : Format.formatter -> semantics -> unit
