open! Relalg

(** The paper's three approximation algorithms (Section 9), for both
    resilience and responsibility, under set or bag semantics:

    - {!lp_rounding_res}/{!lp_rounding_rsp}: round the LP (resp. MILP)
      relaxation at threshold 1/m — a guaranteed m-factor approximation for
      {e every} CQ, self-joins and bags included (Theorem 9.1);
    - {!flow_ct_res}/...: Flow-CT, constant-tuple linearization — minimum
      over all m!/2 atom orderings of the min-cut of the adjacent-key flow
      graph (spurious witnesses may appear);
    - {!flow_cw_res}/...: Flow-CW, constant-witness linearization — same
      sweep with spanning-key graphs (tuples may dissociate).

    All three return upper bounds witnessed by an actual deletion set. *)

type result = { value : int; tuples : Database.tuple_id list }

val lp_rounding_res : Problem.semantics -> Cq.t -> Database.t -> result option
(** [None] when the query is false or no contingency exists. *)

val lp_rounding_rsp :
  Problem.semantics -> Cq.t -> Database.t -> Database.tuple_id -> result option

val flow_ct_res : Problem.semantics -> Cq.t -> Database.t -> result option

val flow_cw_res : Problem.semantics -> Cq.t -> Database.t -> result option

val flow_ct_rsp :
  Problem.semantics -> Cq.t -> Database.t -> Database.tuple_id -> result option

val flow_cw_rsp :
  Problem.semantics -> Cq.t -> Database.t -> Database.tuple_id -> result option
