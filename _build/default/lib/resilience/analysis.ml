open Relalg

let var_set q i = List.sort_uniq compare (Cq.vars_of_atom q.Cq.atoms.(i))

let strict_subset a b = a <> b && List.for_all (fun v -> List.mem v b) a

let endo q i = not q.Cq.atoms.(i).Cq.exo

let dominates q a b = endo q a && endo q b && a <> b && strict_subset (var_set q a) (var_set q b)

let atom_indices q = List.init (Array.length q.Cq.atoms) (fun i -> i)

let dominated_atoms q =
  List.filter (fun b -> List.exists (fun a -> dominates q a b) (atom_indices q)) (atom_indices q)

let solitary q v a =
  let blocked = List.filter (fun x -> x <> v) (var_set q a) in
  not
    (List.exists
       (fun b -> b <> a && endo q b && Cq.var_reaches_atom_avoiding q v b ~blocked)
       (atom_indices q))

let fully_dominated q a =
  endo q a
  && List.for_all
       (fun v ->
         solitary q v a
         || List.exists
              (fun b ->
                b <> a && endo q b && List.mem v (var_set q b) && strict_subset (var_set q b) (var_set q a))
              (atom_indices q))
       (var_set q a)

type triad_status = Active | Deactivated | Fully_deactivated

type triad = { atoms : int * int * int; status : triad_status }

let is_triad q (a, b, c) =
  let check x y z = Cq.atoms_connected_avoiding q x y ~avoid:(var_set q z) in
  check a b c && check b c a && check a c b

let classify q (a, b, c) =
  let members = [ a; b; c ] in
  if List.exists (fun x -> fully_dominated q x) members then Fully_deactivated
  else if
    List.exists (fun x -> List.exists (fun y -> dominates q y x) (atom_indices q)) members
  then Deactivated
  else Active

let triads q =
  let idx = List.filter (endo q) (atom_indices q) in
  let rec pairs = function
    | [] -> []
    | b :: rest -> List.map (fun c -> (b, c)) rest @ pairs rest
  in
  let rec triples = function
    | [] -> []
    | a :: rest -> List.map (fun (b, c) -> (a, b, c)) (pairs rest) @ triples rest
  in
  triples idx
  |> List.filter (is_triad q)
  |> List.map (fun t -> { atoms = t; status = classify q t })

let has_triad q = triads q <> []

let has_active_triad q = List.exists (fun t -> t.status = Active) (triads q)

let is_linear q = not (has_triad q)

let is_linearizable q = not (has_active_triad q)

type complexity = Ptime | Npc | Unknown

(* Query isomorphism: a bijective variable renaming matching atoms (with exo
   flags) one-to-one.  Queries here are tiny, so plain backtracking. *)
let isomorphic qa qb =
  let a_atoms = Array.to_list qa.Cq.atoms and b_atoms = Array.to_list qb.Cq.atoms in
  if List.length a_atoms <> List.length b_atoms then false
  else begin
    let fwd = Hashtbl.create 8 and bwd = Hashtbl.create 8 in
    let match_terms (ta : Cq.term array) (tb : Cq.term array) k =
      let added = ref [] in
      let ok = ref true in
      Array.iteri
        (fun i t ->
          if !ok then
            match (t, tb.(i)) with
            | Cq.Const c, Cq.Const c' -> if c <> c' then ok := false
            | Cq.Var v, Cq.Var w -> (
              match (Hashtbl.find_opt fwd v, Hashtbl.find_opt bwd w) with
              | Some w', Some v' -> if w' <> w || v' <> v then ok := false
              | None, None ->
                Hashtbl.add fwd v w;
                Hashtbl.add bwd w v;
                added := (v, w) :: !added
              | _ -> ok := false)
            | Cq.Const _, Cq.Var _ | Cq.Var _, Cq.Const _ -> ok := false)
        ta;
      let result = !ok && k () in
      if not result then
        List.iter
          (fun (v, w) ->
            Hashtbl.remove fwd v;
            Hashtbl.remove bwd w)
          !added;
      result
    in
    let rec go remaining_a available_b =
      match remaining_a with
      | [] -> true
      | (a : Cq.atom) :: rest ->
        let rec pick before = function
          | [] -> false
          | (b : Cq.atom) :: after ->
            (a.Cq.rel = b.Cq.rel && a.Cq.exo = b.Cq.exo
             && Array.length a.Cq.terms = Array.length b.Cq.terms
             && match_terms a.Cq.terms b.Cq.terms (fun () -> go rest (List.rev_append before after)))
            || pick (b :: before) after
        in
        pick [] available_b
    in
    go a_atoms b_atoms
  end

let known_hard_self_join q =
  (* The self-join queries proven NP-complete in the paper: the 2-chain
     (Fig. 15), z6 (Setting 5), and the Appendix G chains. *)
  let hard =
    [ Queries.q2_chain_sj (); Queries.q_z6 (); Queries.q_chain_b_sj (); Queries.q_chain_abc_sj () ]
  in
  List.exists (isomorphic q) hard

let res_complexity semantics q =
  if Cq.self_join_free q then begin
    match semantics with
    | Problem.Set -> if has_active_triad q then Npc else Ptime
    | Problem.Bag -> if has_triad q then Npc else Ptime
  end
  else if known_hard_self_join q then Npc
  else Unknown

let rsp_complexity semantics q ~t_atom =
  if not (Cq.self_join_free q) then if known_hard_self_join q then Npc else Unknown
  else begin
    match semantics with
    | Problem.Bag -> if has_triad q then Npc else Ptime
    | Problem.Set ->
      let ts = triads q in
      if List.exists (fun t -> t.status = Active) ts then Npc
      else begin
        let ok_triad t =
          let a, b, c = t.atoms in
          t.status = Fully_deactivated
          || List.exists (fun x -> dominates q t_atom x) [ a; b; c ]
        in
        if List.for_all ok_triad ts then Ptime else Npc
      end
  end

let describe semantics q =
  let sj = if Cq.self_join_free q then "SJ-free" else "self-join" in
  let ts = triads q in
  let triad_desc =
    if ts = [] then "linear (no triad)"
    else
      let count st = List.length (List.filter (fun t -> t.status = st) ts) in
      Printf.sprintf "%d triad(s): %d active, %d deactivated, %d fully deactivated"
        (List.length ts) (count Active)
        (count Deactivated)
        (count Fully_deactivated)
  in
  let res =
    match res_complexity semantics q with Ptime -> "PTIME" | Npc -> "NP-complete" | Unknown -> "open"
  in
  Printf.sprintf "%s | %s | %s | RES under %s semantics: %s" (Cq.to_string q) sj triad_desc
    (match semantics with Problem.Set -> "set" | Problem.Bag -> "bag")
    res
