open! Relalg

(** Deletion propagation (Buneman et al.; Sections 1–2 of the paper) on top
    of the unified framework.

    Here queries are {e non-Boolean}: a head of variables defines a view,
    and we want a given output row gone.

    - {!source_side_effects} minimises the number of {e input} tuples
      deleted.  As the paper notes, this is exactly resilience of the
      Boolean specialisation obtained by substituting the output row's
      constants for the head variables — the reduction is implemented here.
    - {!view_side_effects} minimises the number of {e other output rows}
      lost instead (Buneman et al.'s second objective; the paper lists it as
      an open direction its encoding extends to).  We encode it as an ILP in
      the same style as ILP[RSP*]: tuple variables, per-witness destruction
      indicators, an output-row-lost indicator wired to them, and hard
      covering constraints for the target row. *)

type answer = {
  deleted_inputs : Database.tuple_id list;
  lost_outputs : int array list;  (** Other view rows that disappear. *)
}

val output_rows : Cq.t -> head:string list -> Database.t -> int array list
(** The view: distinct valuations of the head variables, in deterministic
    order.  @raise Invalid_argument if a head variable is not in the
    query. *)

val source_side_effects :
  ?exact:bool ->
  Problem.semantics ->
  Cq.t ->
  head:string list ->
  Database.t ->
  output:int array ->
  answer Solve.outcome
(** Minimum-weight input deletion removing [output] from the view.
    [Query_false] doubles as "that row is not in the view". *)

val view_side_effects :
  ?exact:bool ->
  ?node_limit:int ->
  ?time_limit:float ->
  Problem.semantics ->
  Cq.t ->
  head:string list ->
  Database.t ->
  output:int array ->
  answer Solve.outcome
(** Input deletion removing [output] while losing as few other view rows as
    possible (side effects reported in [lost_outputs]).  View rows are
    counted set-wise, so set and bag semantics coincide here. *)

val specialize : Cq.t -> head:string list -> output:int array -> Cq.t
(** The Boolean specialisation: head variables replaced by the output row's
    constants. *)
