open Relalg

(* The P4 test from Theorem J.1's proof: witnesses w1, w2, w3 with
   t1 ∈ w1 ∩ w2, t1 ∉ w3, t2 ∈ w2 ∩ w3, t2 ∉ w1 witness an odd unbalanced
   submatrix.  Checked pairwise through each middle witness w2; tuple sets
   here are small (≤ #atoms), so the inner scans are cheap even though the
   witness loop is cubic in the worst case. *)
let read_once witnesses =
  let sets = Array.of_list (List.map Eval.tuple_set witnesses) in
  let n = Array.length sets in
  let shares_exclusively a b other =
    (* a tuple in both a and b but not in other *)
    List.exists (fun t -> List.mem t b && not (List.mem t other)) a
  in
  let found = ref false in
  for mid = 0 to n - 1 do
    if not !found then
      for i = 0 to n - 1 do
        if (not !found) && i <> mid then
          for j = i + 1 to n - 1 do
            if (not !found) && j <> mid then
              if
                shares_exclusively sets.(i) sets.(mid) sets.(j)
                && shares_exclusively sets.(j) sets.(mid) sets.(i)
              then found := true
          done
      done
  done;
  not !found

type fd = { rel : string; determinant : int; determined : int }

let functional_dependencies db =
  List.concat_map
    (fun rel ->
      let tuples = Database.tuples_of db rel in
      match tuples with
      | [] -> []
      | first :: _ ->
        let arity = Array.length first.Database.args in
        let holds i j =
          let map = Hashtbl.create 64 in
          List.for_all
            (fun info ->
              let k = info.Database.args.(i) and v = info.Database.args.(j) in
              match Hashtbl.find_opt map k with
              | Some v' -> v = v'
              | None ->
                Hashtbl.add map k v;
                true)
            tuples
        in
        List.concat_map
          (fun i ->
            List.filter_map
              (fun j -> if i <> j && holds i j then Some { rel; determinant = i; determined = j } else None)
              (List.init arity Fun.id))
          (List.init arity Fun.id))
    (Database.rel_names db)

let keys db =
  let fds = functional_dependencies db in
  List.concat_map
    (fun rel ->
      let tuples = Database.tuples_of db rel in
      match tuples with
      | [] -> []
      | first :: _ ->
        let arity = Array.length first.Database.args in
        if arity = 1 then [ (rel, 0) ]
        else
          List.filter_map
            (fun i ->
              let determines_all =
                List.for_all
                  (fun j ->
                    i = j
                    || List.exists (fun fd -> fd.rel = rel && fd.determinant = i && fd.determined = j) fds)
                  (List.init arity Fun.id)
              in
              if determines_all then Some (rel, i) else None)
            (List.init arity Fun.id))
    (Database.rel_names db)

let explain_base semantics q db =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Analysis.describe semantics q);
  Buffer.add_char buf '\n';
  let witnesses = Eval.witnesses q db in
  if witnesses = [] then Buffer.add_string buf "instance: query is false here\n"
  else begin
    if read_once witnesses then
      Buffer.add_string buf
        "instance: read-once (no P4 among witnesses) => LP[RES*] is integral here\n\
         regardless of the query's worst-case complexity (Theorem J.1)\n";
    let fds = functional_dependencies db in
    if fds <> [] then begin
      Buffer.add_string buf "instance: functional dependencies in the data:\n";
      List.iter
        (fun fd ->
          Buffer.add_string buf
            (Printf.sprintf "  %s: column %d -> column %d\n" fd.rel fd.determinant fd.determined))
        fds
    end
  end;
  Buffer.contents buf

let var_fds q db =
  let fds = functional_dependencies db in
  Array.to_list q.Cq.atoms
  |> List.concat_map (fun (a : Cq.atom) ->
         List.filter_map
           (fun fd ->
             if fd.rel <> a.Cq.rel then None
             else
               match (a.Cq.terms.(fd.determinant), a.Cq.terms.(fd.determined)) with
               | Cq.Var x, Cq.Var y when x <> y -> Some (x, y)
               | _ -> None)
           fds)
  |> List.sort_uniq compare

let induced_rewrite q fds =
  (* Per atom, close its variable set under the dependencies, then extend
     the atom with the new variables.  Extended atoms get fresh relation
     names (the arity changed; with self-joins differently-extended
     occurrences must not collide). *)
  let closure vars =
    let set = ref (List.sort_uniq compare vars) in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (x, y) ->
          if List.mem x !set && not (List.mem y !set) then begin
            set := y :: !set;
            changed := true
          end)
        fds
    done;
    !set
  in
  let atoms =
    Array.to_list q.Cq.atoms
    |> List.mapi (fun i (a : Cq.atom) ->
           let own = Cq.vars_of_atom a in
           let extra =
             List.filter (fun v -> not (List.mem v own)) (closure own) |> List.sort compare
           in
           if extra = [] then a
           else
             {
               a with
               Cq.rel = Printf.sprintf "%s_fd%d" a.Cq.rel i;
               terms =
                 Array.append a.Cq.terms (Array.of_list (List.map (fun y -> Cq.Var y) extra));
             })
  in
  Cq.make ~name:(q.Cq.name ^ "_fd") atoms

let explain semantics q db =
  let base = explain_base semantics q db in
  let vfds = var_fds q db in
  if vfds = [] then base
  else begin
    let q' = induced_rewrite q vfds in
    match Analysis.res_complexity semantics q' with
    | Analysis.Ptime ->
      base
      ^ Printf.sprintf
          "instance: the induced rewrite under these dependencies (%s) is PTIME --\n\
           the ILP is guaranteed easy on this data (Theorem J.2)\n"
          (Cq.to_string q')
    | Analysis.Npc | Analysis.Unknown -> base
  end
