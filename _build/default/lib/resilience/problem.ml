open Relalg

type semantics = Set | Bag

let tuple_exo q db tid =
  let info = Database.tuple db tid in
  if info.Database.exo then true
  else begin
    let atoms = Array.to_list q.Cq.atoms |> List.filter (fun a -> a.Cq.rel = info.Database.rel) in
    atoms <> [] && List.for_all (fun a -> a.Cq.exo) atoms
  end

let weight semantics info = match semantics with Set -> 1 | Bag -> info.Database.mult

let weight_fn semantics q db info =
  if tuple_exo q db info.Database.id then Netflow.Maxflow.infinity else weight semantics info

let endogenous_tuples q db =
  Database.tuples db
  |> List.filter_map (fun info ->
         if tuple_exo q db info.Database.id then None else Some info.Database.id)

let pp_semantics fmt = function
  | Set -> Format.pp_print_string fmt "set"
  | Bag -> Format.pp_print_string fmt "bag"
