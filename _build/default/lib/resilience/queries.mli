(** The paper's named example queries (Table 3, Section 10 and Appendix G),
    ready-made.  Each value is freshly constructed, so callers may rename or
    re-flag atoms without aliasing. *)

open! Relalg

val q2_chain : unit -> Cq.t
(** Q∞2 :- R(x,y), S(y,z) *)

val q3_chain : unit -> Cq.t
(** Q∞3 :- R(x,y), S(y,z), T(z,u) *)

val q4_chain : unit -> Cq.t
(** Q∞4 :- P(u,x), R(x,y), S(y,z), T(z,v) *)

val q5_chain : unit -> Cq.t
(** Q∞5 :- L(a,u), P(u,x), R(x,y), S(y,z), T(z,v) *)

val q2_star : unit -> Cq.t
(** Q*2 :- R(x), S(y), W(x,y) *)

val q3_star : unit -> Cq.t
(** Q*3 :- R(x), S(y), T(z), W(x,y,z) — active triad, hard (Setting 1). *)

val q_triangle : unit -> Cq.t
(** Q△ :- R(x,y), S(y,z), T(z,x) — active triad. *)

val q_triangle_a : unit -> Cq.t
(** Q△A :- A(x), R(x,y), S(y,z), T(z,x) — deactivated triad: easy/sets,
    hard/bags (Setting 4). *)

val q_triangle_ab : unit -> Cq.t
(** Q△AB :- A(x), R(x,y), S(y,z), T(z,x), B(z) — fully deactivated triad. *)

val q2_chain_sj : unit -> Cq.t
(** Q∞2−SJ :- R(x,y), R(y,z) — the hard self-join chain (Setting 3). *)

val q_conf_sj : unit -> Cq.t
(** SJ-conf :- R(x,y), R(x,z), A(x), C(z) — the easy self-join query of
    Setting 3 (Fig. 7a). *)

val q_confluence : unit -> Cq.t
(** Q∼2−SJ of Table 3: A(x), R(x,y), S(z,y), B(z) — the (SJ-free)
    2-confluence query. *)

val q_z6 : unit -> Cq.t
(** Qz6 :- A(x), R(x,y), R(y,y), R(y,z), C(z) — newly proven hard
    (Setting 5). *)

val q_chain_b_sj : unit -> Cq.t
(** q^b_chain :- R(x,y), B(y), R(y,z) (Appendix G). *)

val q_chain_abc_sj : unit -> Cq.t
(** q^abc_chain :- A(x), R(x,y), B(y), R(y,z), C(z) (Appendix G). *)

val q_tpch_5chain : unit -> Cq.t
(** The 5-chain over the TPC-H-shaped schema of Setting 2. *)

val q_tpch_5cycle : unit -> Cq.t
(** The 5-cycle over the TPC-H-shaped schema of Setting 2. *)

val all_named : unit -> (string * Cq.t) list
(** Every query above, keyed by the paper's name — drives the Table 1
    bench. *)
