open Relalg

(* Branch-and-bound for weighted hitting set:
   - state: deleted tuples (the partial contingency) and forbidden tuples
     (excluded so sibling branches never overlap);
   - branching: pick an uncovered witness with the fewest usable tuples and
     branch on deleting each, forbidding the earlier alternatives;
   - bound: current weight + a greedy packing of pairwise-disjoint uncovered
     witnesses, each contributing its cheapest usable tuple's weight. *)

let resilience ?(node_limit = max_int) semantics q db =
  if not (Eval.holds q db) then None
  else begin
    let witnesses = Eval.witnesses q db in
    let sets =
      Eval.unique_tuple_sets witnesses
      |> List.map (fun ts -> List.filter (fun tid -> not (Problem.tuple_exo q db tid)) ts)
    in
    if List.exists (fun ts -> ts = []) sets then None
    else begin
      let cost tid = Problem.weight semantics (Database.tuple db tid) in
      let sets = List.map (fun ts -> List.sort (fun a b -> compare (cost a) (cost b)) ts) sets in
      let best_value = ref max_int in
      let best_set = ref [] in
      let nodes = ref 0 in
      let rec search deleted forbidden weight remaining =
        incr nodes;
        if !nodes > node_limit then ()
        else begin
          let uncovered =
            List.filter (fun ts -> not (List.exists (fun t -> List.mem t deleted) ts)) remaining
          in
          if uncovered = [] then begin
            if weight < !best_value then begin
              best_value := weight;
              best_set := deleted
            end
          end
          else begin
            let usable ts = List.filter (fun t -> not (List.mem t forbidden)) ts in
            let usable_sets = List.map usable uncovered in
            if List.exists (fun ts -> ts = []) usable_sets then () (* dead end *)
            else begin
              (* Greedy disjoint packing as an admissible lower bound. *)
              let bound =
                let used = Hashtbl.create 16 in
                List.fold_left
                  (fun acc ts ->
                    if List.exists (Hashtbl.mem used) ts then acc
                    else begin
                      List.iter (fun t -> Hashtbl.replace used t ()) ts;
                      acc + (match ts with t :: _ -> cost t | [] -> 0)
                    end)
                  0 usable_sets
              in
              if weight + bound < !best_value then begin
                (* Branch on the smallest uncovered witness. *)
                let pick =
                  List.fold_left
                    (fun acc ts ->
                      match acc with
                      | None -> Some ts
                      | Some cur -> if List.length ts < List.length cur then Some ts else acc)
                    None usable_sets
                in
                match pick with
                | None -> ()
                | Some ts ->
                  let rec branch earlier = function
                    | [] -> ()
                    | t :: rest ->
                      search (t :: deleted) (earlier @ forbidden) (weight + cost t) uncovered;
                      branch (t :: earlier) rest
                  in
                  branch [] ts
              end
            end
          end
        end
      in
      search [] [] 0 sets;
      if !best_value = max_int then None else Some (!best_value, List.sort compare !best_set)
    end
  end
