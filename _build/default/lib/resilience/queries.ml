open Relalg

let p s = Cq_parser.parse s

let q2_chain () = Cq.make ~name:"Q2chain" (Array.to_list (p "R(x,y), S(y,z)").Cq.atoms)
let q3_chain () = Cq.make ~name:"Q3chain" (Array.to_list (p "R(x,y), S(y,z), T(z,u)").Cq.atoms)

let q4_chain () =
  Cq.make ~name:"Q4chain" (Array.to_list (p "P(u,x), R(x,y), S(y,z), T(z,v)").Cq.atoms)

let q5_chain () =
  Cq.make ~name:"Q5chain" (Array.to_list (p "L(a,u), P(u,x), R(x,y), S(y,z), T(z,v)").Cq.atoms)

let q2_star () = Cq.make ~name:"Q2star" (Array.to_list (p "R(x), S(y), W(x,y)").Cq.atoms)

let q3_star () = Cq.make ~name:"Q3star" (Array.to_list (p "R(x), S(y), T(z), W(x,y,z)").Cq.atoms)

let q_triangle () = Cq.make ~name:"Qtriangle" (Array.to_list (p "R(x,y), S(y,z), T(z,x)").Cq.atoms)

let q_triangle_a () =
  Cq.make ~name:"QtriangleA" (Array.to_list (p "A(x), R(x,y), S(y,z), T(z,x)").Cq.atoms)

let q_triangle_ab () =
  Cq.make ~name:"QtriangleAB" (Array.to_list (p "A(x), R(x,y), S(y,z), T(z,x), B(z)").Cq.atoms)

let q2_chain_sj () = Cq.make ~name:"Q2chainSJ" (Array.to_list (p "R(x,y), R(y,z)").Cq.atoms)

let q_conf_sj () = Cq.make ~name:"SJconf" (Array.to_list (p "R(x,y), R(x,z), A(x), C(z)").Cq.atoms)

let q_confluence () =
  Cq.make ~name:"Qconfluence" (Array.to_list (p "A(x), R(x,y), S(z,y), B(z)").Cq.atoms)

let q_z6 () = Cq.make ~name:"Qz6" (Array.to_list (p "A(x), R(x,y), R(y,y), R(y,z), C(z)").Cq.atoms)

let q_chain_b_sj () = Cq.make ~name:"QchainB" (Array.to_list (p "R(x,y), B(y), R(y,z)").Cq.atoms)

let q_chain_abc_sj () =
  Cq.make ~name:"QchainABC" (Array.to_list (p "A(x), R(x,y), B(y), R(y,z), C(z)").Cq.atoms)

let q_tpch_5chain () =
  Cq.make ~name:"Qtpch5chain"
    (Array.to_list
       (p "Customer(cn,ck), Orders(ck,ok), Lineitem(ok,ps), Partsupp(ps,sk), Supplier(sk,sn)")
      .Cq.atoms)

let q_tpch_5cycle () =
  Cq.make ~name:"Qtpch5cycle"
    (Array.to_list
       (p "Customer(cn,ck), Orders(ck,ok), Lineitem(ok,ps), Partsupp(ps,sk), Supplier(sk,cn)")
      .Cq.atoms)

let all_named () =
  [
    ("Q2chain", q2_chain ());
    ("Q3chain", q3_chain ());
    ("Q4chain", q4_chain ());
    ("Q5chain", q5_chain ());
    ("Q2star", q2_star ());
    ("Q3star", q3_star ());
    ("Qtriangle", q_triangle ());
    ("QtriangleA", q_triangle_a ());
    ("QtriangleAB", q_triangle_ab ());
    ("Qconfluence", q_confluence ());
    ("Q2chainSJ", q2_chain_sj ());
    ("SJconf", q_conf_sj ());
    ("Qz6", q_z6 ());
  ]
