open Relalg

type answer = { deleted_inputs : Database.tuple_id list; lost_outputs : int array list }

let check_head q head =
  let vars = Cq.vars q in
  List.iter
    (fun v ->
      if not (List.mem v vars) then
        invalid_arg (Printf.sprintf "Deletion_propagation: head variable %s not in query" v))
    head

let specialize q ~head ~output =
  if List.length head <> Array.length output then
    invalid_arg "Deletion_propagation.specialize: head/output arity mismatch";
  check_head q head;
  let binding v =
    let rec go i = function
      | [] -> None
      | h :: rest -> if h = v then Some output.(i) else go (i + 1) rest
    in
    go 0 head
  in
  let atoms =
    Array.to_list q.Cq.atoms
    |> List.map (fun (a : Cq.atom) ->
           {
             a with
             Cq.terms =
               Array.map
                 (function
                   | Cq.Var v as t -> (
                     match binding v with Some c -> Cq.Const c | None -> t)
                   | Cq.Const _ as t -> t)
                 a.Cq.terms;
           })
  in
  Cq.make ~name:(q.Cq.name ^ "_at_row") atoms

let row_of w head = Array.of_list (List.map (fun v -> List.assoc v w.Eval.valuation) head)

let output_rows q ~head db =
  check_head q head;
  let seen = Hashtbl.create 64 in
  Eval.witnesses q db
  |> List.filter_map (fun w ->
         let row = row_of w head in
         let key = Array.to_list row in
         if Hashtbl.mem seen key then None
         else begin
           Hashtbl.add seen key ();
           Some row
         end)

(* Which view rows disappear once [gamma] is deleted? *)
let lost_rows q ~head db gamma =
  let db' = Database.restrict db (fun info -> not (List.mem info.Database.id gamma)) in
  let before = output_rows q ~head db in
  let after = output_rows q ~head db' in
  List.filter (fun row -> not (List.exists (fun r -> r = row) after)) before

let source_side_effects ?exact semantics q ~head db ~output =
  let qb = specialize q ~head ~output in
  match Solve.resilience ?exact semantics qb db with
  | Solve.Solved a ->
    let lost =
      lost_rows q ~head db a.Solve.contingency
      |> List.filter (fun row -> row <> output)
    in
    Solve.Solved { deleted_inputs = a.Solve.contingency; lost_outputs = lost }
  | Solve.Query_false -> Solve.Query_false
  | Solve.No_contingency -> Solve.No_contingency
  | Solve.Budget_exhausted v -> Solve.Budget_exhausted v

(* Minimise lost view rows: binary Y[o] per non-target output row o, wired
   so Y[o] = 1 whenever all of o's witnesses are destroyed; the target row's
   witnesses carry hard covering constraints.  Tuple variables are binary
   too — they carry no objective weight, so a fractional relaxation could
   destroy witnesses "for free" and under-report the lost rows. *)
let view_side_effects ?(exact = false) ?node_limit ?time_limit _semantics q ~head db ~output =
  check_head q head;
  let witnesses = Eval.witnesses q db in
  if witnesses = [] then Solve.Query_false
  else begin
    let target_ws, other_ws =
      List.partition (fun w -> row_of w head = output) witnesses
    in
    if target_ws = [] then Solve.Query_false
    else begin
      let model = Lp.Model.create () in
      let var_of_tuple = Hashtbl.create 64 in
      let tuple_var tid =
        match Hashtbl.find_opt var_of_tuple tid with
        | Some v -> v
        | None ->
          let v =
            Lp.Model.add_var ~name:(Printf.sprintf "X_%d" tid) ~integer:true ~upper:1 model
          in
          Hashtbl.add var_of_tuple tid v;
          v
      in
      let impossible = ref false in
      (* Hard covering: every witness of the target row must be destroyed. *)
      List.iter
        (fun ts ->
          let endo = List.filter (fun tid -> not (Problem.tuple_exo q db tid)) ts in
          if endo = [] then impossible := true
          else Lp.Model.add_constr model (List.map (fun t -> (tuple_var t, 1)) endo) Lp.Model.Geq 1)
        (Eval.unique_tuple_sets target_ws);
      if !impossible then Solve.No_contingency
      else begin
        (* Group the remaining witnesses by view row. *)
        let groups = Hashtbl.create 64 in
        List.iter
          (fun w ->
            let key = Array.to_list (row_of w head) in
            let cur = try Hashtbl.find groups key with Not_found -> [] in
            Hashtbl.replace groups key (Eval.tuple_set w :: cur))
          other_ws;
        let rows = Hashtbl.fold (fun key sets acc -> (key, sets) :: acc) groups [] in
        List.iter
          (fun (key, sets) ->
            let y =
              Lp.Model.add_var
                ~name:("Y_" ^ String.concat "_" (List.map string_of_int key))
                ~integer:true ~upper:1 ~obj:1 model
            in
            (* per-witness destruction indicators: W >= X[t]; the row is
               lost when all its witnesses are: Y >= sum W - (k-1). *)
            let sets = List.sort_uniq compare sets in
            let ws =
              List.map
                (fun ts ->
                  let w = Lp.Model.add_var ~upper:1 model in
                  List.iter
                    (fun tid ->
                      if Hashtbl.mem var_of_tuple tid then
                        (* only tuples that may actually be deleted matter *)
                        Lp.Model.add_constr model
                          [ (w, 1); (Hashtbl.find var_of_tuple tid, -1) ]
                          Lp.Model.Geq 0)
                    ts;
                  w)
                sets
            in
            let k = List.length ws in
            Lp.Model.add_constr model
              ((y, 1) :: List.map (fun w -> (w, -1)) ws)
              Lp.Model.Geq
              (1 - k))
          rows;
        let solve =
          if exact then fun () ->
            let open Lp.Solvers.Exact_bb in
            match solve ?node_limit ?time_limit model with
            | { status = Optimal; solution = Some sol; _ } ->
              `Ok (Array.map Numeric.Rat.to_float sol)
            | { status = Infeasible; _ } -> `Infeasible
            | { objective = Some _; _ } -> `Budget
            | _ -> `Budget
          else fun () ->
            let open Lp.Solvers.Float_bb in
            match solve ?node_limit ?time_limit model with
            | { status = Optimal; solution = Some sol; _ } -> `Ok sol
            | { status = Infeasible; _ } -> `Infeasible
            | { objective = Some _; _ } -> `Budget
            | _ -> `Budget
        in
        match solve () with
        | `Infeasible -> Solve.No_contingency
        | `Budget -> Solve.Budget_exhausted None
        | `Ok sol ->
          let gamma =
            Hashtbl.fold
              (fun tid v acc -> if sol.(v) > 0.5 then tid :: acc else acc)
              var_of_tuple []
          in
          let lost =
            lost_rows q ~head db gamma |> List.filter (fun row -> row <> output)
          in
          Solve.Solved { deleted_inputs = List.sort compare gamma; lost_outputs = lost }
      end
    end
  end
