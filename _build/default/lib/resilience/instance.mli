open! Relalg

(** Instance-based tractability (Appendix J of the paper): properties of the
    {e data} — rather than the query — that make the unified ILP provably
    easy.  The solver needs none of this as input (it "automatically
    leverages" the structure, Appendix J); these analyses exist to predict
    and explain that behaviour, as Setting 2 does with TPC-H's key/FK
    structure.

    Two checks are provided:

    - {!read_once}: the sufficient condition behind Theorem J.1 — if no
      three witnesses form the P4 pattern (w1, w2 share a tuple that w3
      lacks, while w2, w3 share a tuple that w1 lacks), the ILP constraint
      matrix is balanced, hence LP[RES*] = ILP[RES*] on the instance no
      matter the query's worst-case complexity.
    - {!functional_dependencies}: unary FDs that actually hold in a
      relation's data (e.g. TPC-H's [orderkey -> custkey]); the presence of
      key/FK-style FDs is what makes Setting 2's NPC 5-cycle behave in
      PTIME (Theorem J.2 via the induced-rewrite argument). *)

val read_once : Eval.witness list -> bool
(** No P4 pattern among the witness tuple sets.  [true] guarantees an
    integral LP relaxation (balanced constraint matrix); [false] proves
    nothing — notably, cross-product provenance (e.g. a 2x2 witness grid)
    contains the pattern yet is genuinely read-once; use
    {!Relalg.Provenance.factorize} for the exact notion. *)

type fd = { rel : string; determinant : int; determined : int }
(** A unary functional dependency between two column positions. *)

val functional_dependencies : Database.t -> fd list
(** All unary FDs holding in the instance (per relation, between distinct
    column positions).  Data-level only — no schema knowledge required. *)

val keys : Database.t -> (string * int) list
(** Column positions that are keys of their relation (determine every other
    column). *)

val var_fds : Cq.t -> Database.t -> (string * string) list
(** Variable-level functional dependencies induced by the data: [(x, y)]
    when some atom places [x] on a determinant column and [y] on the
    column it determines.  Only variable-to-variable dependencies are
    kept. *)

val induced_rewrite : Cq.t -> (string * string) list -> Cq.t
(** The induced-rewrites procedure of Freire et al. (Theorem J.2): as long
    as some dependency [x -> y] has an atom containing [x] but not [y],
    extend that atom with [y] (its relation symbol gets a ['] since the
    arity changes).  Under instances satisfying the dependencies, the
    rewritten query has the same resilience/responsibility, so a PTIME
    verdict for it explains PTIME behaviour of the original on this data —
    the mechanism behind Setting 2's easy 5-cycle. *)

val explain : Problem.semantics -> Cq.t -> Database.t -> string
(** Human-readable summary: query-level dichotomy verdict plus any
    instance-level structure (read-once, FDs) that predicts easy solving
    anyway — the story of Settings 2 and 5. *)
