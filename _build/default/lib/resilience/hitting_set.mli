open! Relalg

(** A dedicated weighted-hitting-set branch-and-bound for resilience.

    Resilience is minimum hitting set over the witness hypergraph (the view
    the ILP takes, Section 4).  This solver branches on the tuples of an
    uncovered witness directly instead of on LP variables, and lower-bounds
    with a greedy disjoint-witness packing.  It serves as (a) an independent
    exact oracle for the test suite at sizes brute force cannot reach, and
    (b) the "dedicated combinatorial solver" ablation of the bench suite —
    quantifying what the unified ILP costs/gains against a purpose-built
    algorithm. *)

val resilience :
  ?node_limit:int -> Problem.semantics -> Cq.t -> Database.t -> (int * Database.tuple_id list) option
(** Optimal resilience value and one optimal contingency set; [None] when
    the query is false or no contingency exists.  [node_limit] bounds the
    search (returns the incumbent if hit — may then be suboptimal). *)
