open! Relalg

(** Structural analysis of self-join-free queries: domination, solitary
    variables, triads, and the dichotomy classification of Table 1
    (Definitions 8.1–8.5, Corollaries 8.9/8.10/8.16/8.17).

    Atom arguments are indices into [q.atoms].  The classification functions
    implement the paper's SJ-free dichotomies; on queries with self-joins
    they return [Unknown] unless a special case applies (linearity gives
    PTIME for any query by Theorem 8.6). *)

val dominates : Cq.t -> int -> int -> bool
(** [dominates q a b] — both endogenous and [var(a) ⊊ var(b)]
    (Definition 8.1). *)

val dominated_atoms : Cq.t -> int list
(** Endogenous atoms dominated by some other endogenous atom. *)

val solitary : Cq.t -> string -> int -> bool
(** [solitary q v a] — variable [v] of atom [a] cannot reach another
    endogenous atom without passing through [var(a) - v]
    (Definition 8.3). *)

val fully_dominated : Cq.t -> int -> bool
(** Every non-solitary variable of the atom appears in another atom with a
    strictly smaller variable set (Definition 8.4). *)

type triad_status = Active | Deactivated | Fully_deactivated

type triad = { atoms : int * int * int; status : triad_status }

val triads : Cq.t -> triad list
(** All triads among endogenous atoms: triples pairwise connected by paths
    avoiding the third atom's variables (Definition 8.2), classified per
    Definition 8.5. *)

val has_triad : Cq.t -> bool
val has_active_triad : Cq.t -> bool

val is_linear : Cq.t -> bool
(** Triad-free ("linear", Section 8.1). *)

val is_linearizable : Cq.t -> bool
(** No {e active} triad. *)

type complexity = Ptime | Npc | Unknown

val res_complexity : Problem.semantics -> Cq.t -> complexity
(** RES dichotomy: under sets PTIME iff no active triad (Corollary 8.9);
    under bags PTIME iff no triad (Corollary 8.10).  SJ-free only —
    self-join queries yield [Unknown] unless linear (then [Ptime]) or one of
    the paper's proven-hard self-join queries. *)

val rsp_complexity : Problem.semantics -> Cq.t -> t_atom:int -> complexity
(** RSP dichotomy for a responsibility tuple from atom [t_atom]: under sets,
    PTIME iff the query has no active triad and every triad is either fully
    deactivated or contains an atom dominated by [t_atom]'s atom
    (Corollary 8.16); under bags PTIME iff no triad (Corollary 8.17). *)

val known_hard_self_join : Cq.t -> bool
(** Does the query match (up to variable renaming) one of the self-join
    queries proven NP-complete in the paper (Section 7.2, Appendix G)? *)

val describe : Problem.semantics -> Cq.t -> string
(** One-line human-readable classification, used by the CLI and Table 1
    bench. *)
