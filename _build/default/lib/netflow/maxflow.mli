(** Integer max-flow / min-cut on directed graphs (Dinic's algorithm).

    Capacities are non-negative ints; {!infinity} marks uncuttable edges
    (exogenous tuples in the paper's encodings).  The graph is a mutable
    builder; {!max_flow} may be called repeatedly after capacity updates
    ({!set_cap} resets flows). *)

type t

type edge_id = int

val infinity : int
(** A capacity treated as unbounded (large enough to never be binding, small
    enough that sums cannot overflow). *)

val create : unit -> t

val add_node : t -> int
(** Fresh node id. *)

val num_nodes : t -> int

val add_edge : t -> src:int -> dst:int -> cap:int -> edge_id
(** Directed edge. @raise Invalid_argument on negative capacity. *)

val set_cap : t -> edge_id -> int -> unit

val cap : t -> edge_id -> int

val max_flow : t -> source:int -> sink:int -> int
(** Value of a maximum flow (resets any previous flow). *)

val min_cut : t -> source:int -> sink:int -> int * edge_id list
(** Max-flow value together with a minimum cut: the saturated edges crossing
    from the source's residual-reachable side to the rest.  The edge list is
    empty when the flow value is 0. *)

val is_infinite : int -> bool
(** Whether a flow/cut value should be read as "no finite cut". *)
