(* Dinic's algorithm with adjacency lists of paired forward/backward arcs.
   Arc 2k is the k-th user edge, arc 2k+1 its residual reverse. *)

type edge_id = int

let infinity = max_int / 4

let is_infinite v = v >= infinity / 2

type t = {
  mutable nodes : int;
  mutable dst : int array;  (* arc -> head node *)
  mutable capacity : int array;  (* arc -> remaining capacity *)
  mutable adj : int list array;  (* node -> arcs out of it *)
  mutable narcs : int;
  mutable base : int array;  (* edge_id -> nominal capacity, to reset flows *)
}

let create () =
  {
    nodes = 0;
    dst = Array.make 16 0;
    capacity = Array.make 16 0;
    adj = Array.make 16 [];
    narcs = 0;
    base = Array.make 8 0;
  }

let add_node t =
  let id = t.nodes in
  if id >= Array.length t.adj then begin
    let fresh = Array.make (2 * Array.length t.adj) [] in
    Array.blit t.adj 0 fresh 0 id;
    t.adj <- fresh
  end;
  t.adj.(id) <- [];
  t.nodes <- id + 1;
  id

let num_nodes t = t.nodes

let grow_arcs t =
  if t.narcs + 2 > Array.length t.dst then begin
    let n = 2 * Array.length t.dst in
    let d = Array.make n 0 and c = Array.make n 0 in
    Array.blit t.dst 0 d 0 t.narcs;
    Array.blit t.capacity 0 c 0 t.narcs;
    t.dst <- d;
    t.capacity <- c
  end

let num_edges t = t.narcs / 2

let add_edge t ~src ~dst ~cap =
  if cap < 0 then invalid_arg "Maxflow.add_edge: negative capacity";
  if src >= t.nodes || dst >= t.nodes then invalid_arg "Maxflow.add_edge: unknown node";
  grow_arcs t;
  let a = t.narcs in
  t.dst.(a) <- dst;
  t.capacity.(a) <- cap;
  t.dst.(a + 1) <- src;
  t.capacity.(a + 1) <- 0;
  t.adj.(src) <- a :: t.adj.(src);
  t.adj.(dst) <- (a + 1) :: t.adj.(dst);
  t.narcs <- t.narcs + 2;
  let id = a / 2 in
  if id >= Array.length t.base then begin
    let fresh = Array.make (2 * Array.length t.base) 0 in
    Array.blit t.base 0 fresh 0 id;
    t.base <- fresh
  end;
  t.base.(id) <- cap;
  id

let set_cap t id cap =
  if cap < 0 then invalid_arg "Maxflow.set_cap: negative capacity";
  if id < 0 || id >= num_edges t then invalid_arg "Maxflow.set_cap: unknown edge";
  t.base.(id) <- cap;
  t.capacity.(2 * id) <- cap;
  t.capacity.((2 * id) + 1) <- 0

let cap t id =
  if id < 0 || id >= num_edges t then invalid_arg "Maxflow.cap: unknown edge";
  t.base.(id)

let reset_flows t =
  for id = 0 to num_edges t - 1 do
    t.capacity.(2 * id) <- t.base.(id);
    t.capacity.((2 * id) + 1) <- 0
  done

(* BFS level graph; returns [true] when the sink is reachable. *)
let levels t ~source ~sink dist =
  Array.fill dist 0 t.nodes (-1);
  dist.(source) <- 0;
  let queue = Queue.create () in
  Queue.push source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun a ->
        let v = t.dst.(a) in
        if t.capacity.(a) > 0 && dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.push v queue
        end)
      t.adj.(u)
  done;
  dist.(sink) >= 0

let rec augment t dist iter ~sink u pushed =
  if u = sink then pushed
  else begin
    let rec try_arcs () =
      match iter.(u) with
      | [] -> 0
      | a :: rest ->
        let v = t.dst.(a) in
        if t.capacity.(a) > 0 && dist.(v) = dist.(u) + 1 then begin
          let d = augment t dist iter ~sink v (min pushed t.capacity.(a)) in
          if d > 0 then begin
            t.capacity.(a) <- t.capacity.(a) - d;
            t.capacity.(a lxor 1) <- t.capacity.(a lxor 1) + d;
            d
          end
          else begin
            iter.(u) <- rest;
            try_arcs ()
          end
        end
        else begin
          iter.(u) <- rest;
          try_arcs ()
        end
    in
    try_arcs ()
  end

let max_flow t ~source ~sink =
  reset_flows t;
  if source = sink then 0
  else begin
    let dist = Array.make (max 1 t.nodes) (-1) in
    let flow = ref 0 in
    while levels t ~source ~sink dist do
      let iter = Array.init t.nodes (fun u -> t.adj.(u)) in
      let continue = ref true in
      while !continue do
        let d = augment t dist iter ~sink source infinity in
        if d = 0 then continue := false else flow := !flow + d
      done
    done;
    !flow
  end

let min_cut t ~source ~sink =
  let value = max_flow t ~source ~sink in
  if value = 0 then (0, [])
  else begin
    (* Residual reachability from the source; saturated crossing edges form
       a minimum cut. *)
    let reach = Array.make t.nodes false in
    reach.(source) <- true;
    let queue = Queue.create () in
    Queue.push source queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun a ->
          let v = t.dst.(a) in
          if t.capacity.(a) > 0 && not reach.(v) then begin
            reach.(v) <- true;
            Queue.push v queue
          end)
        t.adj.(u)
    done;
    let cut = ref [] in
    for id = 0 to num_edges t - 1 do
      if t.base.(id) > 0 then begin
        let a = 2 * id in
        let u = t.dst.(a + 1) and v = t.dst.(a) in
        if reach.(u) && not reach.(v) then cut := id :: !cut
      end
    done;
    (value, !cut)
  end
