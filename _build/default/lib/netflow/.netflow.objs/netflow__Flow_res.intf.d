lib/netflow/flow_res.mli: Cq Database Eval Relalg
