lib/netflow/maxflow.mli:
