lib/netflow/linearize.ml: Array Cq List Relalg
