lib/netflow/linearize.mli: Cq Relalg
