lib/netflow/maxflow.ml: Array List Queue
