lib/netflow/flow_res.ml: Array Database Eval Hashtbl Linearize List Maxflow Relalg
