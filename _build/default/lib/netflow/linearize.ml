open Relalg

let vars_at q i = Cq.vars_of_atom q.Cq.atoms.(i)

let spanning_vars q order k =
  let m = Array.length order in
  let before = ref [] and after = ref [] in
  for i = 0 to m - 1 do
    let vs = vars_at q order.(i) in
    if i <= k then before := vs @ !before else after := vs @ !after
  done;
  List.filter (fun v -> List.mem v !after) !before |> List.sort_uniq compare

let adjacent_vars q order k =
  let a = vars_at q order.(k) and b = vars_at q order.(k + 1) in
  List.filter (fun v -> List.mem v b) a |> List.sort_uniq compare

let order_exact q order =
  let m = Array.length order in
  let ok = ref true in
  for i = 0 to m - 1 do
    let a = q.Cq.atoms.(order.(i)) in
    if not a.Cq.exo then begin
      let atom_vars = vars_at q order.(i) in
      let check_cut k =
        if k >= 0 && k < m - 1 then
          List.iter
            (fun v -> if not (List.mem v atom_vars) then ok := false)
            (spanning_vars q order k)
      in
      check_cut (i - 1);
      check_cut i
    end
  done;
  !ok

(* All permutations of [0..m-1], keeping one representative per reversal
   pair (the lexicographically smaller of the two). *)
let permutations m =
  let rec go acc avail prefix =
    if avail = [] then Array.of_list (List.rev prefix) :: acc
    else
      List.fold_left
        (fun acc x -> go acc (List.filter (fun y -> y <> x) avail) (x :: prefix))
        acc avail
  in
  let all = go [] (List.init m (fun i -> i)) [] in
  List.filter
    (fun p ->
      let r = Array.of_list (List.rev (Array.to_list p)) in
      compare p r <= 0)
    all

let all_orders q = permutations (Array.length q.Cq.atoms)

let exact_orders q = List.filter (order_exact q) (all_orders q)

let is_linear q =
  let all_endo = Cq.make ~name:q.Cq.name (Array.to_list q.Cq.atoms |> List.map (fun a -> { a with Cq.exo = false })) in
  List.exists (order_exact all_endo) (all_orders all_endo)
