open! Relalg

(** Atom orderings and the structural conditions under which a query's
    witnesses embed exactly into a flow graph.

    An ordering of the atoms induces, between consecutive positions, a
    {e cut} whose {e spanning variables} are those occurring both before and
    after it.  A flow graph built over such an ordering (see {!Flow_res})
    keys its nodes by the witness's values on the spanning variables; an
    endogenous tuple maps to a single edge iff the spanning variables of its
    two adjacent cuts are contained in its atom's variables.  When that holds
    at every endogenous position, min-cut equals resilience (the classical
    encoding of Meliou et al. for linear queries, extended to exogenous atoms
    which may split freely because their edges are uncuttable anyway).

    All searches here are over permutations of the query's atoms — they are
    exponential in the (fixed) query size only, never in the data. *)

val spanning_vars : Cq.t -> int array -> int -> string list
(** [spanning_vars q order k] — variables occurring both in
    [order.(0..k)] and in [order.(k+1..)] (the cut after position [k]). *)

val adjacent_vars : Cq.t -> int array -> int -> string list
(** Variables shared by the two atoms adjacent to cut [k]:
    [vars order.(k) ∩ vars order.(k+1)] — the Flow-CT node key. *)

val order_exact : Cq.t -> int array -> bool
(** Does the ordering satisfy the exactness condition above, given the
    query's exogenous flags? *)

val exact_orders : Cq.t -> int array list
(** All exact orderings, one per reversal pair. *)

val is_linear : Cq.t -> bool
(** Is there an exact ordering when {e every} atom is treated as endogenous?
    This coincides with triad-freeness on the paper's queries (checked in
    the test suite against {!Resilience.Analysis}). *)

val all_orders : Cq.t -> int array list
(** All atom orderings, one per reversal pair — the m!/2 linearizations of
    the Flow-CT/Flow-CW approximations (Section 9.2). *)
