(* Quickstart: build a database, parse a query, and compute resilience,
   responsibility, the LP relaxation and the approximations — the whole
   public API in one file.

     dune exec examples/quickstart.exe
*)

open Relalg
open Resilience

let () =
  (* 1. A database.  Constants are ints; [add_named] interns strings. *)
  let db = Database.create () in
  let _r12 = Database.add db "R" [| 1; 2 |] in
  let s23 = Database.add db "S" [| 2; 3 |] in
  let _s24 = Database.add db "S" [| 2; 4 |] in

  (* 2. A Boolean conjunctive query, via the tiny parser. *)
  let q = Cq_parser.parse "Q :- R(x,y), S(y,z)" in
  Printf.printf "query: %s\n" (Cq.to_string q);
  Printf.printf "true on the instance? %b\n" (Eval.holds q db);
  Printf.printf "witnesses: %d\n\n" (List.length (Eval.witnesses q db));

  (* 3. What does the dichotomy say?  (Table 1 of the paper.) *)
  print_endline (Analysis.describe Problem.Set q);
  print_endline (Analysis.describe Problem.Bag q);
  print_newline ();

  (* 4. Resilience: the minimum number of tuples to delete so the query
     becomes false — solved through the unified ILP. *)
  (match Solve.resilience Problem.Set q db with
  | Solve.Solved a ->
    Printf.printf "RES* = %d (root LP %.2f, integral: %b — solved at the root, as the\n"
      a.Solve.res_value a.Solve.res_stats.Solve.root_lp a.Solve.res_stats.Solve.root_integral;
    Printf.printf "dichotomy promises for this PTIME query)\ncontingency set:\n";
    List.iter (fun tid -> Printf.printf "  %s\n" (Database_io.print_tuple db tid)) a.Solve.contingency
  | _ -> print_endline "resilience: unexpected outcome");
  print_newline ();

  (* 5. The LP relaxation has the same optimum (Theorem 8.6). *)
  (match Solve.resilience_lp Problem.Set q db with
  | Some lp -> Printf.printf "LP[RES*] = %.2f  (equals the ILP: the paper's key theorem)\n\n" lp
  | None -> ());

  (* 6. Responsibility of one tuple: minimum deletions that make it
     counterfactual (Section 5). *)
  (match Solve.responsibility Problem.Set q db s23 with
  | Solve.Solved a ->
    Printf.printf "RSP*(S(2,3)) = %d  =>  responsibility 1/(1+%d) = %.2f\n" a.Solve.rsp_value
      a.Solve.rsp_value
      (1.0 /. (1.0 +. float_of_int a.Solve.rsp_value))
  | Solve.No_contingency -> print_endline "S(2,3) cannot be made counterfactual"
  | _ -> print_endline "responsibility: unexpected outcome");
  print_newline ();

  (* 7. Bag semantics: only the objective changes (Section 4). *)
  let db_bag = Database.copy db in
  Database.set_mult db_bag s23 5;
  (match Solve.resilience Problem.Bag q db_bag with
  | Solve.Solved a ->
    Printf.printf "bag semantics with S(2,3) x5: RES* = %d (the cheap tuples win)\n" a.Solve.res_value
  | _ -> ());

  (* 8. Approximations (Section 9) — exact here, useful on NPC queries. *)
  match Approx.lp_rounding_res Problem.Set q db with
  | Some { Approx.value; _ } -> Printf.printf "LP-rounding upper bound: %d\n" value
  | None -> ()
