(* Dichotomy explorer: classify queries with the structural criteria of
   Section 8 and watch the LP-integrality prediction come true on random
   data — easy queries solve at the LP root, hard ones branch.

     dune exec examples/dichotomy_explorer.exe
*)

open Relalg
open Resilience

let sample_and_solve q sem =
  let rng = Random.State.make [| 2024 |] in
  let specs = Datagen.Random_inst.specs_of_query q ~count:60 in
  let db = Datagen.Random_inst.db rng ~domain:6 ~max_bag:3 specs in
  if Eval.holds q db then begin
    match Solve.resilience ~time_limit:10.0 sem q db with
    | Solve.Solved a ->
      Printf.printf "    random instance: RES*=%d  root LP %s  nodes %d\n" a.Solve.res_value
        (if a.Solve.res_stats.Solve.root_integral then "integral" else
           Printf.sprintf "fractional (%.2f)" a.Solve.res_stats.Solve.root_lp)
        a.Solve.res_stats.Solve.nodes
    | Solve.Budget_exhausted v ->
      Printf.printf "    random instance: budget exhausted (incumbent %s)\n"
        (match v with Some v -> string_of_int v | None -> "none")
    | _ -> ()
  end
  else print_endline "    (sampled instance does not satisfy the query)"

let () =
  let queries =
    [
      "R(x,y), S(y,z)";
      "R(x), S(y), W(x,y)";
      "R(x), S(y), T(z), W(x,y,z)";
      "R(x,y), S(y,z), T(z,x)";
      "A(x), R(x,y), S(y,z), T(z,x)";
      "A(x), R(x,y), S(y,z), T(z,x), B(z)";
      "R(x,y), R(y,z)";
    ]
  in
  List.iter
    (fun qs ->
      let q = Cq_parser.parse qs in
      Printf.printf "%s\n" (Cq.to_string q);
      List.iter
        (fun sem ->
          Printf.printf "  %s\n"
            (Analysis.describe sem q);
          sample_and_solve q sem)
        [ Problem.Set; Problem.Bag ];
      (* per-atom responsibility classification, where the SJ-free dichotomy
         applies *)
      if Cq.self_join_free q then begin
        let by_atom sem =
          Array.to_list q.Cq.atoms
          |> List.map (fun (a : Cq.atom) -> a.Cq.rel)
          |> List.mapi (fun i rel ->
                 Printf.sprintf "%s:%s" rel
                   (match Analysis.rsp_complexity sem q ~t_atom:i with
                   | Analysis.Ptime -> "P"
                   | Analysis.Npc -> "NPC"
                   | Analysis.Unknown -> "?"))
          |> String.concat " "
        in
        Printf.printf "  RSP by atom (set): %s\n" (by_atom Problem.Set)
      end;
      print_newline ())
    queries
