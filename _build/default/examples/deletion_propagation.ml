(* Deletion propagation on a view — the reverse-data-management application
   that motivates resilience (Sections 1–2 of the paper): remove one output
   row from a view by deleting input tuples, under either objective
   (fewest inputs deleted, or fewest other outputs lost).

     dune exec examples/deletion_propagation.exe
*)

open Relalg
open Resilience

let () =
  (* A tiny authorship view: WrittenBy(author) :- Author(author, paper),
     Accepted(paper, venue).  Which interventions remove an author from the
     accepted list? *)
  let db = Database.create () in
  let add ?mult rel row = ignore (Database.add_named ?mult db rel row) in
  add "Author" [| "ada"; "p1" |];
  (* bob's authorship rows are duplicated (bag semantics), so deleting them
     is expensive — the cheap route goes through the Accepted rows, which
     hurts ada *)
  add ~mult:2 "Author" [| "bob"; "p1" |];
  add ~mult:2 "Author" [| "bob"; "p2" |];
  add "Author" [| "cyd"; "p3" |];
  add "Accepted" [| "p1"; "sigmod" |];
  add "Accepted" [| "p2"; "sigmod" |];
  add "Accepted" [| "p3"; "vldb" |];
  let q = Cq_parser.parse_with db "Author(a,p), Accepted(p,v)" in
  let head = [ "a" ] in
  let name c = Symbol.name (Database.symbols db) c in

  let rows = Deletion_propagation.output_rows q ~head db in
  Printf.printf "view rows: %s\n\n" (String.concat ", " (List.map (fun r -> name r.(0)) rows));

  let bob = Symbol.intern (Database.symbols db) "bob" in
  let show label = function
    | Solve.Solved a ->
      Printf.printf "%s:\n  delete:\n" label;
      List.iter
        (fun tid -> Printf.printf "    %s\n" (Database_io.print_tuple db tid))
        a.Deletion_propagation.deleted_inputs;
      if a.Deletion_propagation.lost_outputs = [] then
        print_endline "  no other view rows are lost"
      else begin
        Printf.printf "  also lost from the view:\n";
        List.iter
          (fun row -> Printf.printf "    %s\n" (name row.(0)))
          a.Deletion_propagation.lost_outputs
      end;
      print_newline ()
    | Solve.Query_false -> Printf.printf "%s: row not in the view\n\n" label
    | Solve.No_contingency -> Printf.printf "%s: impossible\n\n" label
    | Solve.Budget_exhausted _ -> Printf.printf "%s: budget exhausted\n\n" label
  in

  (* Objective (a): fewest input deletions (bag-weighted) — resilience of
     the Boolean specialisation.  Here the cheap plan deletes the Accepted
     rows and takes ada down with bob. *)
  show "source side effects (fewest input deletions, bag weights)"
    (Deletion_propagation.source_side_effects Problem.Bag q ~head db ~output:[| bob |]);

  (* Objective (b): fewest other view rows lost. *)
  show "view side effects (fewest collateral view rows)"
    (Deletion_propagation.view_side_effects Problem.Set q ~head db ~output:[| bob |])
