(* Auditing a decision pipeline with resilience and responsibility — the
   fairness/explanation use case the paper's introduction motivates
   (algorithmic fairness, query explanations, debugging).

   A loan pipeline denies an applicant when some rule fires on some feature
   of their record:

     Denied() :- Applicant(a, g), Feature(a, f), Rule(f, r), Flags(r, g)

   where Flags(r, g) says rule r flags group g.  Resilience measures how
   entrenched the denials are (how many facts would have to change);
   responsibility ranks the individual facts — features, rules, group flags
   — by their causal contribution, surfacing e.g. a single rule that drives
   most denials for one group.

     dune exec examples/fairness_audit.exe
*)

open Relalg
open Resilience

let () =
  let db = Database.create () in
  let add rel row = ignore (Database.add_named db rel row) in
  (* applicants with their group *)
  add "Applicant" [| "p1"; "groupA" |];
  add "Applicant" [| "p2"; "groupA" |];
  add "Applicant" [| "p3"; "groupB" |];
  (* features of each record *)
  add "Feature" [| "p1"; "thin_file" |];
  add "Feature" [| "p2"; "thin_file" |];
  add "Feature" [| "p2"; "high_util" |];
  add "Feature" [| "p3"; "high_util" |];
  (* which rule reacts to which feature *)
  add "Rule" [| "thin_file"; "r17" |];
  add "Rule" [| "high_util"; "r9" |];
  (* which rule flags which group *)
  add "Flags" [| "r17"; "groupA" |];
  add "Flags" [| "r9"; "groupB" |];
  let q =
    Cq_parser.parse_with db "Denied :- Applicant(a,g), Feature(a,f), Rule(f,r), Flags(r,g)"
  in
  let name c = Symbol.name (Database.symbols db) c in

  Printf.printf "denial query: %s\n" (Cq.to_string_named (Database.symbols db) q);
  Printf.printf "denial events (witnesses): %d\n\n" (List.length (Eval.witnesses q db));

  (* Worst-case complexity vs this instance (Appendix J in action). *)
  print_endline (Analysis.describe Problem.Set q);
  print_newline ();

  (* How entrenched are the denials? *)
  (match Solve.resilience Problem.Set q db with
  | Solve.Solved a ->
    Printf.printf "resilience = %d: the smallest policy/data change ending all denials:\n"
      a.Solve.res_value;
    List.iter
      (fun tid -> Printf.printf "  change %s\n" (Database_io.print_tuple db tid))
      a.Solve.contingency
  | _ -> print_endline "unexpected outcome");
  print_newline ();

  (* Which facts carry the most responsibility for the denials? *)
  print_endline "facts ranked by causal responsibility:";
  List.iter
    (fun (tid, k, rho) ->
      Printf.printf "  %.2f (contingency %d)  %s\n" rho k (Database_io.print_tuple db tid))
    (Solve.responsibility_ranking Problem.Set q db);
  print_newline ();

  (* Drill into one group: are groupA's denials explained by a single rule?
     Constants in the query make this a selection. *)
  let qa =
    Cq_parser.parse_with db
      "DeniedA :- Applicant(a,'groupA'), Feature(a,f), Rule(f,r), Flags(r,'groupA')"
  in
  match Solve.resilience Problem.Set qa db with
  | Solve.Solved a ->
    Printf.printf "groupA-only denials: resilience %d via:\n" a.Solve.res_value;
    List.iter
      (fun tid -> Printf.printf "  %s\n" (Database_io.print_tuple db tid))
      a.Solve.contingency;
    (match a.Solve.contingency with
    | [ tid ] ->
      Printf.printf "=> a single fact (%s) accounts for every groupA denial\n"
        (name (Database.tuple db tid).Database.args.(0))
    | _ -> ())
  | _ -> print_endline "unexpected outcome"
