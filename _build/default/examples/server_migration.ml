(* System-migration planning with resilience — the paper's Examples 12/13
   (Appendix B): which minimal set of usages keeps server S busy, and which
   users/request types carry the most responsibility?

     dune exec examples/server_migration.exe
*)

open Relalg
open Resilience

let () =
  let mig = Datagen.Workloads.migration () in
  let db = mig.Datagen.Workloads.server_db in
  let q = mig.Datagen.Workloads.usage_query in

  Printf.printf "why is server S still used?  %s\n\n"
    (Cq.to_string_named (Database.symbols db) q);
  Printf.printf "current witnesses (user, request type) pairs: %d\n\n"
    (List.length (Eval.witnesses q db));

  (* The minimal explanation (Example 12): the IT department should move
     Alice's mail and migrate the databases. *)
  (match Solve.resilience Problem.Set q db with
  | Solve.Solved a ->
    Printf.printf "minimal migration plan (%d interventions):\n" a.Solve.res_value;
    List.iter
      (fun tid -> Printf.printf "  resolve %s\n" (Database_io.print_tuple db tid))
      a.Solve.contingency;
    assert (Solve.verify_contingency Problem.Set q db a.Solve.contingency)
  | _ -> print_endline "unexpected outcome");
  print_newline ();

  (* This query is linear, so the dedicated min-cut algorithm agrees. *)
  (match Solve.resilience_flow Problem.Set q db with
  | Some (Solve.Solved a) ->
    Printf.printf "dedicated flow baseline agrees: %d\n\n" a.Solve.res_value
  | _ -> print_endline "flow baseline unavailable\n");

  (* Example 13: responsibility of individual tuples for the load. *)
  print_endline "responsibility of selected facts (Example 13):";
  List.iter
    (fun (label, tid) ->
      match Solve.responsibility Problem.Set q db tid with
      | Solve.Solved a ->
        Printf.printf "  %-28s contingency %d  responsibility %.2f\n" label a.Solve.rsp_value
          (1.0 /. (1.0 +. float_of_int a.Solve.rsp_value))
      | Solve.No_contingency -> Printf.printf "  %-28s (not a cause)\n" label
      | _ -> ())
    [
      ("Users(1, Alice)", mig.Datagen.Workloads.alice);
      ("Requests(DB, data access)", mig.Datagen.Workloads.db_requests);
    ]
