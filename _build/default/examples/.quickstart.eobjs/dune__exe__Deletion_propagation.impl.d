examples/deletion_propagation.ml: Array Cq_parser Database Database_io Deletion_propagation List Printf Problem Relalg Resilience Solve String Symbol
