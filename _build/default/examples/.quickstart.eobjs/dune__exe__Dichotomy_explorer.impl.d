examples/dichotomy_explorer.ml: Analysis Array Cq Cq_parser Datagen Eval List Printf Problem Random Relalg Resilience Solve String
