examples/server_migration.mli:
