examples/fairness_audit.mli:
