examples/certificate_hunt.ml: Approx Array Cq Database Eval Format Ijp List Printf Problem Queries Relalg Resilience Solve
