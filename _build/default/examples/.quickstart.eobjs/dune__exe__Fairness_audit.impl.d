examples/fairness_audit.ml: Analysis Array Cq Cq_parser Database Database_io Eval List Printf Problem Relalg Resilience Solve Symbol
