examples/server_migration.ml: Cq Database Database_io Datagen Eval List Printf Problem Relalg Resilience Solve
