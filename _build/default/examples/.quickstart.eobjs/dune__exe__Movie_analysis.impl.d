examples/movie_analysis.ml: Analysis Cq Database_io Datagen Eval List Printf Problem Relalg Resilience Solve
