examples/certificate_hunt.mli:
