examples/quickstart.ml: Analysis Approx Cq Cq_parser Database Database_io Eval List Printf Problem Relalg Resilience Solve
