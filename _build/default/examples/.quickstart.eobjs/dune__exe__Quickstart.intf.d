examples/quickstart.mli:
