examples/movie_analysis.mli:
