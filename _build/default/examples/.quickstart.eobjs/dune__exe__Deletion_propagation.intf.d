examples/deletion_propagation.mli:
