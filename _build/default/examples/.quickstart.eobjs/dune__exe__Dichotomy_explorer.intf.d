examples/dichotomy_explorer.mli:
