(* Certificate hunt: reproduce the paper's automatic hardness proofs
   (Section 7.2) — search for an Independent Join Path, verify it
   semantically, and compose it into an actually-hard database instance via
   the vertex-cover reduction of Theorem 7.4.

     dune exec examples/certificate_hunt.exe
*)

open Relalg
open Resilience

let () =
  let q = Queries.q2_chain_sj () in
  Printf.printf "hunting a hardness certificate for %s ...\n\n" (Cq.to_string q);
  match Ijp.Search.find q with
  | None -> print_endline "no certificate found (proves nothing — raise the budget)"
  | Some (jp, stats) ->
    Printf.printf "found in %.2fs after %d candidates:\n\n" stats.Ijp.Search.elapsed
      stats.Ijp.Search.candidates;
    Format.printf "%a@." Ijp.Join_path.pp jp;
    (match Ijp.Join_path.check_ijp Problem.Set jp with
    | Ok c ->
      Printf.printf
        "\nall of Definition 7.3 verified (resilience c = %d); by Theorem 7.4 RES(Q)\n\
         is NP-complete.\n\n"
        c
    | Error e -> Printf.printf "\nverification failed: %s\n" e);

    (* Put the certificate to work: encode vertex cover of an odd cycle.  Odd
       cycles are the minimal graphs whose cover LP is fractional, so the
       composed instance separates LP[RES*] from ILP[RES*]. *)
    print_endline "composing the gadget over a 5-cycle (vertex cover = 3):";
    let edges = Ijp.Compose.odd_cycle 2 in
    let db = Ijp.Compose.vertex_cover_instance jp ~edges in
    let expected = Ijp.Compose.expected_resilience jp ~edges ~vertex_cover:3 in
    Printf.printf "  instance: %d tuples, %d witnesses\n" (Database.num_tuples db)
      (List.length (Eval.witnesses q db));
    (match Solve.resilience Problem.Set q db with
    | Solve.Solved a ->
      Printf.printf "  ILP[RES*] = %d (expected %d = VC + |E|(c-1))\n" a.Solve.res_value expected;
      Printf.printf "  root LP   = %.2f (%s)\n" a.Solve.res_stats.Solve.root_lp
        (if a.Solve.res_stats.Solve.root_integral then "integral"
         else "fractional: the LP sees the half-integral vertex cover");
      Printf.printf "  branch-and-bound nodes: %d\n" a.Solve.res_stats.Solve.nodes
    | _ -> print_endline "  solve failed");
    print_newline ();
    (* The m-factor approximation still works on the hard instance. *)
    match Approx.lp_rounding_res Problem.Set q db with
    | Some { Approx.value; tuples } ->
      Printf.printf "LP-rounding approximation: %d (valid: %b; guarantee: within %dx)\n" value
        (Solve.verify_contingency Problem.Set q db tuples)
        (Array.length q.Cq.atoms)
    | None -> ()
