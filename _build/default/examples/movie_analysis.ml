(* Exploratory data analysis with resilience and causal responsibility —
   the paper's Examples 10 and 11 (Appendix B): how surprising is it that an
   Oscar-winning actor appeared in a movie directed by their spouse?

     dune exec examples/movie_analysis.exe
*)

open Relalg
open Resilience

let pp_tuple db tid = Database_io.print_tuple db tid

let () =
  let m = Datagen.Workloads.movies () in
  let db = m.Datagen.Workloads.movie_db in

  print_endline "How surprising is an Oscar winner acting in a spouse-directed movie?";
  Printf.printf "query: %s\n\n" (Cq.to_string m.Datagen.Workloads.oscar_triangle);

  (* Resilience = the minimum number of real-world facts that would have to
     be different for the phenomenon to disappear.  Small resilience = a
     small core of events explains everything. *)
  (match Solve.resilience Problem.Set m.Datagen.Workloads.oscar_triangle db with
  | Solve.Solved a ->
    Printf.printf "resilience = %d: a single fact carries all %d query answers —\n"
      a.Solve.res_value
      (List.length (Eval.witnesses m.Datagen.Workloads.oscar_triangle db));
    List.iter (fun tid -> Printf.printf "  %s\n" (pp_tuple db tid)) a.Solve.contingency
  | _ -> print_endline "unexpected outcome");
  print_newline ();

  (* The dichotomy in action (Example 10's punchline): with the Oscar atom
     the query is PTIME under set semantics; drop it and resilience becomes
     NP-complete. *)
  print_endline (Analysis.describe Problem.Set m.Datagen.Workloads.oscar_triangle);
  print_endline (Analysis.describe Problem.Set m.Datagen.Workloads.plain_triangle);
  print_endline (Analysis.describe Problem.Bag m.Datagen.Workloads.oscar_triangle);
  print_newline ();

  (* Example 11: responsibility ranks tuples as explanations.  We rank every
     tuple by 1 / (1 + |contingency set|). *)
  print_endline "tuples ranked by causal responsibility for the query answer:";
  List.iter
    (fun (tid, _, rho) -> Printf.printf "  %.2f  %s\n" rho (pp_tuple db tid))
    (Solve.responsibility_ranking Problem.Set m.Datagen.Workloads.oscar_triangle db);
  print_newline ();
  print_endline
    "(tuples absent from the list cannot be made counterfactual at all; the 1.0\n\
     entries are counterfactual causes — deleting them alone kills every answer)"
