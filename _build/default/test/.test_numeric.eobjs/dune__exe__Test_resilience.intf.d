test/test_resilience.mli:
