test/test_datagen.mli:
