test/test_relalg.ml: Alcotest Array Cq Cq_parser Database Database_io Eval Float Homomorphism List Provenance QCheck QCheck_alcotest Random Relalg Resilience Symbol
