test/test_numeric.ml: Alcotest Array Bigint Field Fmt List Numeric QCheck QCheck_alcotest Rat
