test/test_ijp.ml: Alcotest Cq Cq_parser Database Eval Format Ijp List Problem QCheck QCheck_alcotest Queries Random Relalg Resilience Solve String
