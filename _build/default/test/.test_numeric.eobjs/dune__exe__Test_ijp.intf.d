test/test_ijp.mli:
