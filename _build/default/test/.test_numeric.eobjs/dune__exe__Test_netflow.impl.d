test/test_netflow.ml: Alcotest Array Cq Cq_parser Database List Netflow QCheck QCheck_alcotest Random Relalg Resilience
