test/test_datagen.ml: Alcotest Array Cq_parser Database Datagen Eval Hashtbl List Random Relalg Resilience
