test/test_lp.ml: Alcotest Array Float Fun List Lp Numeric Option QCheck QCheck_alcotest
