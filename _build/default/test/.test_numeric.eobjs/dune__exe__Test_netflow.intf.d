test/test_netflow.mli:
