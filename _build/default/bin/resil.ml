(* resil — command-line front end: classify queries, compute resilience and
   responsibility over text-format instances, and hunt for IJP hardness
   certificates.

     resil classify "A(x), R(x,y), S(y,z), T(z,x)"
     resil resilience --data db.txt --bag "R(x,y), S(y,z)"
     resil responsibility --data db.txt --tuple "S(1,1)" "R(x,y), S(y,z)"
     resil certificate --domain 5 "R(x,y), R(y,z)"
*)

open Cmdliner
open Relalg
open Resilience

let semantics_of_bag bag = if bag then Problem.Bag else Problem.Set

let load_db data =
  match data with
  | Some path -> Database_io.load path
  | None -> Database.create ()

let parse_query db s =
  try Ok (Cq_parser.parse_with db s) with Invalid_argument msg -> Error msg

let pp_tuples db tids =
  List.iter (fun tid -> Printf.printf "  %s\n" (Database_io.print_tuple db tid)) tids

(* ----- classify --------------------------------------------------------- *)

let classify_cmd =
  let run query =
    let db = Database.create () in
    match parse_query db query with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok q ->
      List.iter
        (fun sem -> print_endline (Analysis.describe sem q))
        [ Problem.Set; Problem.Bag ];
      if Cq.self_join_free q then begin
        Array.iteri
          (fun i (a : Cq.atom) ->
            List.iter
              (fun sem ->
                let c = Analysis.rsp_complexity sem q ~t_atom:i in
                Printf.printf "RSP for tuples of %s under %s semantics: %s\n" a.Cq.rel
                  (match sem with Problem.Set -> "set" | Problem.Bag -> "bag")
                  (match c with
                  | Analysis.Ptime -> "PTIME"
                  | Analysis.Npc -> "NP-complete"
                  | Analysis.Unknown -> "open"))
              [ Problem.Set; Problem.Bag ])
          q.Cq.atoms
      end;
      0
  in
  let query = Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY") in
  Cmd.v
    (Cmd.info "classify" ~doc:"Classify a conjunctive query's RES/RSP complexity (Table 1)")
    Term.(const run $ query)

(* ----- resilience ------------------------------------------------------- *)

let data_arg =
  Arg.(value & opt (some file) None & info [ "data"; "d" ] ~docv:"FILE" ~doc:"Instance file")

let bag_arg = Arg.(value & flag & info [ "bag" ] ~doc:"Bag semantics (multiplicities count)")

let exact_arg = Arg.(value & flag & info [ "exact" ] ~doc:"Exact rational arithmetic (slow)")

let resilience_cmd =
  let run data bag exact lp query =
    let db = load_db data in
    match parse_query db query with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok q ->
      let sem = semantics_of_bag bag in
      if lp then begin
        match Solve.resilience_lp ~exact sem q db with
        | Some v ->
          Printf.printf "LP[RES*] = %g\n" v;
          0
        | None ->
          print_endline "LP[RES*]: no program (query false or no contingency)";
          1
      end
      else begin
        match Solve.resilience ~exact sem q db with
        | Solve.Solved a ->
          Printf.printf "RES* = %d  (root LP %g, %s, %d nodes)\n" a.Solve.res_value
            a.Solve.res_stats.Solve.root_lp
            (if a.Solve.res_stats.Solve.root_integral then "integral" else "fractional")
            a.Solve.res_stats.Solve.nodes;
          print_endline "contingency set:";
          pp_tuples db a.Solve.contingency;
          0
        | Solve.Query_false ->
          print_endline "query is false on this instance (resilience 0)";
          0
        | Solve.No_contingency ->
          print_endline "no contingency set exists (exogenous tuples block every option)";
          1
        | Solve.Budget_exhausted _ ->
          print_endline "budget exhausted";
          1
      end
  in
  let lp = Arg.(value & flag & info [ "lp" ] ~doc:"Solve the LP relaxation only") in
  let query = Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY") in
  Cmd.v
    (Cmd.info "resilience" ~doc:"Minimum tuple deletions falsifying the query (ILP[RES*])")
    Term.(const run $ data_arg $ bag_arg $ exact_arg $ lp $ query)

(* ----- responsibility --------------------------------------------------- *)

let responsibility_cmd =
  let run data bag exact tuple query =
    let db = load_db data in
    match parse_query db query with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok q -> (
      let tid =
        match Database_io.parse_line db tuple with
        | Some tid ->
          (* parse_line inserted a copy; undo the multiplicity bump if it
             already existed, or remove it if it did not. *)
          let info = Database.tuple db tid in
          if info.Database.mult > 1 then Database.set_mult db tid (info.Database.mult - 1)
          else Database.remove db tid;
          Database.find db info.Database.rel info.Database.args
        | None -> None
      in
      match tid with
      | None ->
        prerr_endline "responsibility tuple not found in the instance";
        1
      | Some tid -> (
        let sem = semantics_of_bag bag in
        match Solve.responsibility ~exact sem q db tid with
        | Solve.Solved a ->
          Printf.printf "RSP* = %d  (responsibility %g)\n" a.Solve.rsp_value
            (1.0 /. (1.0 +. float_of_int a.Solve.rsp_value));
          print_endline "contingency set:";
          pp_tuples db a.Solve.responsibility_set;
          0
        | Solve.Query_false ->
          print_endline "query is false on this instance";
          1
        | Solve.No_contingency ->
          print_endline "tuple cannot be made counterfactual";
          1
        | Solve.Budget_exhausted _ ->
          print_endline "budget exhausted";
          1))
  in
  let tuple =
    Arg.(
      required
      & opt (some string) None
      & info [ "tuple"; "t" ] ~docv:"TUPLE" ~doc:"Responsibility tuple, e.g. \"S(1,1)\"")
  in
  let query = Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY") in
  Cmd.v
    (Cmd.info "responsibility"
       ~doc:"Minimum contingency set making a tuple counterfactual (ILP[RSP*])")
    Term.(const run $ data_arg $ bag_arg $ exact_arg $ tuple $ query)

(* ----- explain ----------------------------------------------------------- *)

let explain_cmd =
  let run data bag query =
    let db = load_db data in
    match parse_query db query with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok q ->
      let sem = semantics_of_bag bag in
      print_string (Instance.explain sem q db);
      (match Relalg.Provenance.read_once q db with
      | Some e ->
        Format.printf "instance: read-once provenance factorization:@.  %a@."
          (Relalg.Provenance.pp ~db) e
      | None -> ());
      0
  in
  let query = Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY") in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain an instance: dichotomy verdict plus data-level structure (read-once \
          provenance, functional dependencies, induced rewrites) that predicts easy solving")
    Term.(const run $ data_arg $ bag_arg $ query)

(* ----- certificate ------------------------------------------------------ *)

let certificate_cmd =
  let run domain generators query =
    let db = Database.create () in
    match parse_query db query with
    | Error msg ->
      prerr_endline msg;
      1
    | Ok q -> (
      let config = { Ijp.Search.default_config with domain; max_generators = generators } in
      match Ijp.Search.find ~config q with
      | Some (jp, stats) ->
        Printf.printf "NP-completeness certificate found in %.2fs (%d candidates):\n\n"
          stats.Ijp.Search.elapsed stats.Ijp.Search.candidates;
        Format.printf "%a@." Ijp.Join_path.pp jp;
        0
      | None ->
        Printf.printf
          "no IJP certificate with domain %d and <= %d generator witnesses (proves nothing)\n"
          domain generators;
        1)
  in
  let domain =
    Arg.(value & opt int 5 & info [ "domain" ] ~docv:"D" ~doc:"Constants range over 1..D")
  in
  let generators =
    Arg.(value & opt int 4 & info [ "generators" ] ~docv:"K" ~doc:"Max generator witnesses")
  in
  let query = Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY") in
  Cmd.v
    (Cmd.info "certificate"
       ~doc:"Search for an Independent Join Path proving RES(Q) NP-complete (Section 7)")
    Term.(const run $ domain $ generators $ query)

let () =
  let doc = "resilience and causal responsibility via ILP (SIGMOD 2023 reproduction)" in
  let info = Cmd.info "resil" ~version:"1.0.0" ~doc in
  exit (Cmd.eval' (Cmd.group info
       [ classify_cmd; resilience_cmd; responsibility_cmd; explain_cmd; certificate_cmd ]))
